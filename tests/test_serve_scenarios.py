"""Multi-scenario serving: ``?scenario=``, the engine table, ``/scenarios``.

One :class:`CorridorQueryService` hosts every registered scenario: the
default stays exactly as the single-scenario server behaved (pinned by
``test_serve_service.py``/``test_serve_parity.py``), and this file pins
the routing layer on top — lazy engine-per-scenario states, per-scenario
body caches, structured errors for bad references, and checkpoint-all on
draining shutdown.
"""

from __future__ import annotations

import json

import pytest

from repro.scenarios import resolve_scenario
from repro.serve import CorridorQueryService
from repro.serve.payloads import render_payload


@pytest.fixture()
def service(scenario, engine):
    return CorridorQueryService(scenario=scenario, engine=engine)


class TestScenarioParam:
    def test_routes_to_the_requested_corridor(self, service):
        status, payload = service.handle_url("/rankings?scenario=europe2020")
        assert status == 200
        assert (payload["source"], payload["target"]) == ("LD4", "FR2")
        assert [r["licensee"] for r in payload["rankings"]] == [
            "Channel Wave Networks",
            "Rhine Crossing Comm",
            "Lowland Relay",
        ]

    def test_default_requests_untouched(self, service):
        status, payload = service.handle_url("/rankings")
        assert status == 200
        assert (payload["source"], payload["target"]) == ("CME", "NY4")

    def test_engine_shared_with_the_registry(self, service):
        service.handle_url("/rankings?scenario=europe2020")
        state = service._resolve_state("europe2020")
        assert state.facade.engine is resolve_scenario("europe2020").engine()

    def test_spellings_share_one_state(self, service):
        a = service._resolve_state("synthetic:seed=4,networks=1,links=12")
        b = service._resolve_state("synthetic:links=12,networks=1,seed=4")
        assert a is b

    def test_default_name_routes_to_default_state(self, service, scenario):
        state = service._resolve_state(scenario.name)
        assert state is service._default_state

    def test_scenario_defaults_follow_the_scenario(self, service):
        # /apa falls back to the scenario's spotlight pair and /map to
        # its first spotlight network — not the paper's hardcoded names.
        status, payload = service.handle_url("/apa?scenario=tokyo-singapore")
        assert status == 200
        assert payload["licensees"] == ["Pacific Rim Relay", "Straits Microwave"]
        status, payload = service.handle_url("/map?scenario=tokyo-singapore")
        assert status == 200
        assert payload["properties"]["licensee"] == "Pacific Rim Relay"

    def test_unknown_scenario_is_structured_404(self, service):
        status, payload = service.handle_url("/rankings?scenario=atlantis")
        assert status == 404
        assert payload["error"]["code"] == "unknown-scenario"

    def test_bad_parameters_are_structured_400(self, service):
        status, payload = service.handle_url(
            "/rankings?scenario=synthetic:seed=many"
        )
        assert status == 400
        assert payload["error"]["code"] == "bad-scenario"

    def test_sites_validated_against_the_requested_corridor(self, service):
        status, payload = service.handle_url(
            "/rankings?scenario=europe2020&source=CME"
        )
        assert status == 400
        assert payload["error"]["code"] == "unknown-site"
        assert "LD4" in payload["error"]["message"]


class TestScenariosEndpoint:
    def test_lists_registry_and_loaded(self, service, scenario):
        service.handle_url("/rankings?scenario=europe2020")
        status, payload = service.handle_url("/scenarios")
        assert status == 200
        assert payload["default"] == scenario.name
        assert "europe2020" in payload["loaded"]
        by_name = {entry["name"]: entry for entry in payload["scenarios"]}
        assert by_name["synthetic"]["concrete"] is False
        assert "seed" in by_name["synthetic"]["params"]
        assert by_name["paper2020"]["concrete"] is True

    def test_payload_renders_canonically(self, service):
        status, payload = service.handle_url("/scenarios")
        assert json.loads(render_payload(payload)) == payload

    def test_unknown_endpoint_mentions_scenarios(self, service):
        status, payload = service.handle_url("/nope")
        assert status == 404
        assert "/scenarios" in payload["error"]["message"]


class TestPerScenarioBodyCaches:
    def test_body_caches_are_isolated_per_scenario(self, service):
        s1, body1 = service.handle_http("/rankings?scenario=europe2020")
        s2, body2 = service.handle_http("/rankings?scenario=europe2020")
        assert (s1, s2) == (200, 200)
        assert body1 == body2
        europe = service._resolve_state("europe2020")
        assert europe.bodies.describe()["hits"] == 1
        # The default scenario's cache never saw the request.
        assert service.bodies.describe()["misses"] == 0

    def test_stats_reports_loaded_scenarios(self, service):
        service.handle_http("/rankings?scenario=europe2020")
        status, stats = service.handle_url("/stats")
        assert status == 200
        assert "europe2020" in stats["scenarios"]
        europe = stats["scenarios"]["europe2020"]
        assert europe["scenario"] == "europe2020"
        assert europe["body_cache"]["misses"] >= 1

    def test_bad_scenario_bodies_never_cached(self, service):
        service.handle_http("/rankings?scenario=atlantis")
        service.handle_http("/rankings?scenario=atlantis")
        for state in service._states.values():
            described = state.bodies.describe()
            assert described["entries"] == 0


class TestCheckpointAll:
    def test_checkpoint_covers_every_loaded_engine(self, tmp_path, scenario):
        import dataclasses

        from repro.core.engine import CorridorEngine
        from repro.store import CacheStore
        from repro.uls.database import UlsDatabase

        # Two scenarios, each on its own store-attached engine.
        default_store = CacheStore(tmp_path / "default")
        copy = UlsDatabase(list(scenario.database))
        default_engine = CorridorEngine(
            copy, scenario.corridor, store=default_store
        )
        service = CorridorQueryService(
            scenario=dataclasses.replace(scenario, database=copy),
            engine=default_engine,
        )
        europe = resolve_scenario("europe2020")
        europe_store = CacheStore(tmp_path / "europe")
        europe_engine = CorridorEngine(
            europe.database, europe.corridor, store=europe_store
        )
        state = service._resolve_state("europe2020")
        state.facade = type(state.facade)(europe_engine)

        service.handle_url("/rankings")
        service.handle_url("/rankings?scenario=europe2020")
        service.checkpoint()
        assert len(default_store.stat()) == 1
        assert len(europe_store.stat()) == 1

    def test_cold_service_checkpoint_is_noop(self, scenario):
        service = CorridorQueryService(scenario=scenario, warm=False)
        assert service.checkpoint() is None


class TestLoadgenAcrossScenarios:
    def test_inprocess_server_serves_scenario_param(self, service):
        from repro.serve import CorridorServer

        import urllib.request

        with CorridorServer(service) as server:
            with urllib.request.urlopen(
                server.url + "/rankings?scenario=europe2020"
            ) as response:
                assert response.status == 200
                payload = json.loads(response.read())
        assert payload["source"] == "LD4"
