"""Concurrency guarantees of the serve facade over one shared engine.

Three nets, per the serve design (DESIGN.md §13):

* **Single-build coalescing** — N threads barrier-released on the same
  cold (date, params) key observe exactly one ``engine.snapshot.full``
  resolution and one ``engine.snapshot.miss`` build (obs counters), and
  byte-identical payloads.
* **Thread/serial equivalence** — a hypothesis-driven fleet of random
  timeline/ranking/APA interleavings produces responses element-wise
  identical to a fresh serial engine, and leaves the engine's
  ``CacheStats`` in a state reachable by some serial order (same builds,
  no more lookups).
* **Error coalescing** — followers behind a failing leader get the
  leader's error, and the in-flight slot is released for later requests.
"""

from __future__ import annotations

import threading
import time

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.engine import CorridorEngine
from repro.serve import CorridorQueryService, ServiceError
from repro.serve.payloads import render_payload


def fresh_service(scenario) -> CorridorQueryService:
    engine = CorridorEngine(scenario.database, scenario.corridor)
    return CorridorQueryService(scenario=scenario, engine=engine)


def run_threads(service, urls: list[str]) -> list[tuple[int, dict]]:
    """Fire one thread per url, barrier-released; return results in order."""
    barrier = threading.Barrier(len(urls))
    results: list = [None] * len(urls)

    def worker(index: int, url: str) -> None:
        barrier.wait()
        results[index] = service.handle_url(url)

    threads = [
        threading.Thread(target=worker, args=(index, url))
        for index, url in enumerate(urls)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


class TestCoalescingSingleBuild:
    N = 6

    def test_identical_cold_misses_build_once(self, scenario):
        service = fresh_service(scenario)
        facade = service.facade
        url = "/map?date=2018-05-01"

        # Gate the leader's computation until every other thread has
        # coalesced behind it, so the single-leader case is deterministic
        # rather than a race the fast path usually wins.
        original = service.routes["/map"]

        def gated(engine, params):
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                with facade._stats_lock:
                    if facade._followers >= self.N - 1:
                        break
                time.sleep(0.001)
            return original(engine, params)

        service.routes["/map"] = gated

        with obs.capture() as cap:
            results = run_threads(service, [url] * self.N)

        assert {status for status, _ in results} == {200}
        bodies = {render_payload(payload) for _, payload in results}
        assert len(bodies) == 1  # byte-identical payloads for everyone

        counters = cap.counters()
        # Exactly one cold resolution and one cold build for N requests.
        assert counters.get("engine.snapshot.full", 0) == 1
        assert counters.get("engine.snapshot.miss", 0) == 1
        assert counters.get("serve.coalesce.leader") == 1
        assert counters.get("serve.coalesce.follower") == self.N - 1
        assert counters.get("serve.request.map") == self.N

        stats = facade.describe()
        assert stats["facade"]["requests"] == self.N
        assert stats["facade"]["coalesce_follower"] == self.N - 1

    def test_coalesced_error_reaches_all_followers(self, scenario, engine):
        service = CorridorQueryService(scenario=scenario, engine=engine)
        facade = service.facade
        n = 4

        def failing(engine, params):
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                with facade._stats_lock:
                    if facade._followers >= n - 1:
                        break
                time.sleep(0.001)
            raise ServiceError(503, "overloaded", "synthetic failure")

        service.routes["/fail"] = failing
        results = run_threads(service, ["/fail"] * n)
        assert [status for status, _ in results] == [503] * n
        assert {payload["error"]["code"] for _, payload in results} == {
            "overloaded"
        }
        # The in-flight slot was released: a later request recomputes
        # (and fails afresh) rather than deadlocking on a dead entry.
        assert not facade._inflight
        status, payload = service.handle_url("/fail")
        assert status == 503


REQUEST_POOL = (
    "/rankings?date=2016-06-01",
    "/rankings?date=2019-01-01",
    "/apa",
    "/apa?date=2017-03-01",
    "/timeline?licensee=New%20Line%20Networks",
    "/timeline?licensee=Webline%20Holdings",
)


class TestThreadedMatchesSerial:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        picks=st.lists(
            st.integers(min_value=0, max_value=len(REQUEST_POOL) - 1),
            min_size=1,
            max_size=6,
        )
    )
    def test_random_interleavings_are_serializable(self, scenario, picks):
        urls = [REQUEST_POOL[i] for i in picks]

        threaded = fresh_service(scenario)
        threaded_results = run_threads(threaded, urls)

        serial = fresh_service(scenario)
        serial_results = [serial.handle_url(url) for url in urls]

        # Element-wise identical responses, byte for byte.
        for (t_status, t_payload), (s_status, s_payload) in zip(
            threaded_results, serial_results
        ):
            assert t_status == s_status == 200
            assert render_payload(t_payload) == render_payload(s_payload)

        # CacheStats lands in a state reachable by some serial order:
        # the same set of snapshots was built (misses and final cache
        # size are order-invariant), and coalescing may only have
        # *removed* lookups relative to the serial replay.
        t_stats = threaded.facade.engine.stats
        s_stats = serial.facade.engine.stats
        assert t_stats.snapshot.misses == s_stats.snapshot.misses
        assert t_stats.snapshot.size == s_stats.snapshot.size
        assert t_stats.snapshot.lookups <= s_stats.snapshot.lookups
        assert (
            t_stats.snapshot_full + t_stats.snapshot_incremental
            <= s_stats.snapshot_full + s_stats.snapshot_incremental
        )
