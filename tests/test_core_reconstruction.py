"""Tests for the reconstruction pipeline (licenses → network at a date)."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.core.corridor import chicago_nj_corridor
from repro.core.reconstruction import NetworkReconstructor, reconstruct_all
from repro.geodesy import geodesic_interpolate
from repro.uls.database import UlsDatabase
from tests.conftest import make_license

CORRIDOR = chicago_nj_corridor()


def _chain_licenses(
    licensee: str = "Demo Net",
    n_links: int = 23,
    grant: dt.date = dt.date(2015, 1, 1),
    cancellation: dt.date | None = None,
):
    """A straight 24-tower corridor chain, one license per link."""
    cme, ny4 = CORRIDOR.site("CME").point, CORRIDOR.site("NY4").point
    margin = 0.0008
    fractions = [margin + f * (1 - 2 * margin) / n_links for f in range(n_links + 1)]
    points = geodesic_interpolate(cme, ny4, fractions)
    licenses = []
    for index, (a, b) in enumerate(zip(points, points[1:])):
        licenses.append(
            make_license(
                f"{licensee[:2].upper()}{index:03d}",
                licensee=licensee,
                points=((a.latitude, a.longitude), (b.latitude, b.longitude)),
                grant=grant,
                cancellation=cancellation,
            )
        )
    return licenses


class TestReconstruct:
    def test_full_chain_is_connected(self):
        reconstructor = NetworkReconstructor(CORRIDOR)
        network = reconstructor.reconstruct(_chain_licenses(), dt.date(2020, 4, 1))
        assert network.is_connected("CME", "NY4")
        route = network.lowest_latency_route("CME", "NY4")
        assert route.latency_ms == pytest.approx(3.96, abs=0.01)

    def test_before_grant_date_nothing_exists(self):
        reconstructor = NetworkReconstructor(CORRIDOR)
        network = reconstructor.reconstruct(_chain_licenses(), dt.date(2014, 1, 1))
        assert network.tower_count == 0
        assert not network.is_connected("CME", "NY4")

    def test_after_cancellation_disconnected(self):
        licenses = _chain_licenses(cancellation=dt.date(2018, 1, 1))
        reconstructor = NetworkReconstructor(CORRIDOR)
        network = reconstructor.reconstruct(licenses, dt.date(2019, 1, 1))
        assert not network.is_connected("CME", "NY4")

    def test_single_missing_link_breaks_connectivity(self):
        licenses = _chain_licenses()
        licenses[10].cancellation_date = dt.date(2018, 1, 1)
        reconstructor = NetworkReconstructor(CORRIDOR)
        network = reconstructor.reconstruct(licenses, dt.date(2019, 1, 1))
        assert not network.is_connected("CME", "NY4")
        # ... but before the cancellation the path exists.
        earlier = reconstructor.reconstruct(licenses, dt.date(2017, 1, 1))
        assert earlier.is_connected("CME", "NY4")

    def test_mixed_licensees_require_explicit_name(self):
        mixed = _chain_licenses("A Net")[:2] + _chain_licenses("B Net")[:2]
        # Regenerate ids to avoid collisions.
        for index, lic in enumerate(mixed):
            lic.license_id = f"MX{index}"
            lic.callsign = f"WQMX{index}"
        reconstructor = NetworkReconstructor(CORRIDOR)
        with pytest.raises(ValueError, match="multiple licensees"):
            reconstructor.reconstruct(mixed, dt.date(2020, 1, 1))
        network = reconstructor.reconstruct(
            mixed, dt.date(2020, 1, 1), licensee="Joint"
        )
        assert network.licensee == "Joint"

    def test_empty_license_list(self):
        reconstructor = NetworkReconstructor(CORRIDOR)
        network = reconstructor.reconstruct([], dt.date(2020, 1, 1))
        assert network.licensee == "(empty)"
        assert network.tower_count == 0


class TestDatabaseHelpers:
    @pytest.fixture()
    def database(self):
        db = UlsDatabase()
        db.extend(_chain_licenses("Alpha Net"))
        partial = _chain_licenses("Beta Partial")[:10]
        for index, lic in enumerate(partial):
            lic.license_id = f"BP{index:03d}"
            lic.callsign = f"WQBP{index:03d}"
        db.extend(partial)
        return db

    def test_reconstruct_licensee(self, database):
        reconstructor = NetworkReconstructor(CORRIDOR)
        network = reconstructor.reconstruct_licensee(
            database, "Alpha Net", dt.date(2020, 1, 1)
        )
        assert network.licensee == "Alpha Net"
        assert network.is_connected("CME", "NY4")

    def test_connected_networks_filters_partials(self, database):
        reconstructor = NetworkReconstructor(CORRIDOR)
        connected = reconstructor.connected_networks(
            database, dt.date(2020, 1, 1), "CME", "NY4"
        )
        assert [network.licensee for network in connected] == ["Alpha Net"]

    def test_reconstruct_all(self, database):
        networks = reconstruct_all(database, CORRIDOR, dt.date(2020, 1, 1))
        assert set(networks) == {"Alpha Net", "Beta Partial"}
        assert not networks["Beta Partial"].is_connected("CME", "NY4")
