"""Whole-program flow analysis: graph building, effect propagation, the
four program rules, the findings cache, and the ``lint graph`` CLI.

Fixture trees are written under ``tmp_path`` with their own flow roots and
rule options, so every assertion is hermetic; the determinism tests run
the CLI against *this* repository in subprocesses with different
``PYTHONHASHSEED`` values and demand byte-identical output.
"""

from __future__ import annotations

import ast
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint import LintConfig, lint_paths
from repro.lint.flow.cache import FlowCache
from repro.lint.flow.program import build_program_analysis, module_name_for
from repro.lint.flow.report import render_graph_json, render_why
from repro.lint.flow.summary import summarize_source

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_tree(tmp_path: Path, files: dict[str, str]) -> None:
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def flow_config(tmp_path: Path, **rule_options) -> LintConfig:
    options = {"flow": {"roots": ["src/pkg"]}}
    options.update(rule_options)
    return LintConfig(root=tmp_path, rule_options=options)


def analysis_for(tmp_path: Path, files: dict[str, str], **rule_options):
    write_tree(tmp_path, files)
    return build_program_analysis(flow_config(tmp_path, **rule_options))


def summarize(source: str, module: str = "pkg.mod"):
    tree = ast.parse(textwrap.dedent(source))
    return summarize_source("src/pkg/mod.py", module, tree)


class TestModuleSummary:
    def test_direct_effects_extracted(self):
        summary = summarize(
            """
            import random
            import time

            _CACHE = {}

            def leaf(out):
                global _CACHE
                _CACHE = {}
                out.append(1)
                random.random()
                time.time()
                open("x")
            """
        )
        leaf = next(fn for fn in summary.functions if fn.qual == "leaf")
        kinds = {(kind, detail) for kind, detail, _line in leaf.effects}
        assert ("global-write", "pkg.mod._CACHE") in kinds
        assert ("arg-mutate", "out") in kinds
        assert ("rng", "random.random") in kinds
        assert ("clock", "time.time") in kinds
        assert ("io", "open") in kinds

    def test_cross_module_alias_write(self):
        summary = summarize(
            """
            from pkg import settings as cfg

            def flip():
                cfg.MODE = "fast"
            """
        )
        flip = next(fn for fn in summary.functions if fn.qual == "flip")
        assert ["global-write", "pkg.settings.MODE", 5] in flip.effects

    def test_function_local_import_alias_write(self):
        summary = summarize(
            """
            def flip():
                from pkg import settings as cfg

                cfg.MODE = "fast"
            """
        )
        flip = next(fn for fn in summary.functions if fn.qual == "flip")
        assert any(
            kind == "global-write" and detail == "pkg.settings.MODE"
            for kind, detail, _line in flip.effects
        )

    def test_json_round_trip(self):
        summary = summarize(
            """
            from pkg.util import helper

            class Box:
                def get(self, key="k"):
                    return helper(self.data[key])

            def top():
                box = Box()
                return box.get()
            """
        )
        from repro.lint.flow.summary import ModuleSummary

        clone = ModuleSummary.from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert clone.to_dict() == summary.to_dict()

    def test_module_name_for(self):
        assert (
            module_name_for("src/pkg", "src/pkg/sub/mod.py") == "pkg.sub.mod"
        )
        assert module_name_for("src/pkg", "src/pkg/__init__.py") == "pkg"
        assert module_name_for("src/pkg", "src/other/mod.py") is None


CYCLIC_PKG = {
    "src/pkg/__init__.py": "",
    "src/pkg/a.py": """
        from pkg.b import pong

        def ping(n):
            if n:
                return pong(n - 1)
            return 0

        def _dead_helper():
            return 1
        """,
    "src/pkg/b.py": """
        def pong(n):
            from pkg.a import ping

            return ping(n)
        """,
}


class TestProgramGraph:
    def test_mutual_recursion_is_one_component(self, tmp_path):
        analysis = analysis_for(tmp_path, CYCLIC_PKG)
        components = analysis.graph.strongly_connected_components()
        cyclic = [c for c in components if len(c) > 1]
        assert cyclic == [("pkg.a.ping", "pkg.b.pong")]

    def test_reachability_and_chain(self, tmp_path):
        analysis = analysis_for(tmp_path, CYCLIC_PKG)
        reach = analysis.graph.reachable(["pkg.a.ping"])
        assert "pkg.b.pong" in reach
        chain = analysis.graph.shortest_chain(["pkg.a.ping"], "pkg.b.pong")
        assert chain == ["pkg.a.ping", "pkg.b.pong"]

    def test_reexport_through_package_init(self, tmp_path):
        analysis = analysis_for(
            tmp_path,
            {
                "src/pkg/__init__.py": "from pkg.impl import work\n",
                "src/pkg/impl.py": """
                    def work():
                        return 1
                    """,
                "src/pkg/user.py": """
                    from pkg import work

                    def run():
                        return work()
                    """,
            },
        )
        assert "pkg.impl.work" in analysis.graph.call_edges["pkg.user.run"]

    def test_annotated_receiver_resolves_to_class(self, tmp_path):
        analysis = analysis_for(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/store.py": """
                    class Store:
                        def flush(self):
                            return 1
                    """,
                "src/pkg/user.py": """
                    from pkg.store import Store

                    def run(store: Store):
                        return store.flush()
                    """,
            },
        )
        assert analysis.graph.call_edges["pkg.user.run"] == (
            "pkg.store.Store.flush",
        )

    def test_unannotated_receiver_falls_back_to_every_method(self, tmp_path):
        analysis = analysis_for(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/one.py": """
                    class A:
                        def flush(self):
                            return 1
                    """,
                "src/pkg/two.py": """
                    class B:
                        def flush(self):
                            return 2
                    """,
                "src/pkg/user.py": """
                    def run(thing):
                        return thing.flush()
                    """,
            },
        )
        assert analysis.graph.call_edges["pkg.user.run"] == (
            "pkg.one.A.flush",
            "pkg.two.B.flush",
        )

    def test_import_cycle_detected(self, tmp_path):
        analysis = analysis_for(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/x.py": "from pkg import y\n",
                "src/pkg/y.py": "from pkg import x\n",
            },
        )
        assert analysis.graph.import_cycles() == [("pkg.x", "pkg.y")]


class TestEffectPropagation:
    def test_effects_reach_the_boundary_through_a_chain(self, tmp_path):
        analysis = analysis_for(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/mod.py": """
                    import time

                    def api():
                        return _middle()

                    def _middle():
                        return _leaf()

                    def _leaf():
                        return time.time()
                    """,
            },
        )
        summary = analysis.effects["pkg.mod.api"]
        assert summary.direct == ()
        assert summary.origins("clock") == (
            ("pkg.mod._leaf", "time.time", 11),
        )

    def test_cycle_members_share_effects(self, tmp_path):
        analysis = analysis_for(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/mod.py": """
                    import random

                    def even(n):
                        return n == 0 or odd(n - 1)

                    def odd(n):
                        random.random()
                        return n != 0 and even(n - 1)
                    """,
            },
        )
        for fqn in ("pkg.mod.even", "pkg.mod.odd"):
            assert "rng" in analysis.effects[fqn].transitive

    def test_callback_reference_propagates_effects(self, tmp_path):
        analysis = analysis_for(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/mod.py": """
                    def run(items):
                        return map(_mutate, items)

                    def _mutate(acc):
                        acc.append(1)
                    """,
            },
        )
        assert "arg-mutate" in analysis.effects["pkg.mod.run"].transitive


def run_flow_lint(
    tmp_path: Path,
    files: dict[str, str],
    *,
    enabled: tuple[str, ...],
    cache: FlowCache | None = None,
    **rule_options,
):
    write_tree(tmp_path, files)
    config = LintConfig(
        root=tmp_path,
        enabled=enabled,
        rule_options={"flow": {"roots": ["src/pkg"]}, **rule_options},
    )
    return lint_paths(
        [tmp_path / "src/pkg"],
        config=config,
        use_baseline=False,
        cache=cache,
    )


SHARED_STATE_PKG = {
    "src/pkg/__init__.py": "",
    "src/pkg/state.py": """
        COUNTER = 0

        def bump():
            global COUNTER
            COUNTER += 1
        """,
    "src/pkg/worker.py": """
        from pkg.state import bump

        def _task(chunk):
            bump()
            return chunk
        """,
}


class TestSharedStateRule:
    OPTIONS = {"shared-state": {"roots": ["pkg.worker._task"], "allowed": []}}

    def test_worker_reachable_global_write_flagged(self, tmp_path):
        result = run_flow_lint(
            tmp_path,
            SHARED_STATE_PKG,
            enabled=("shared-state",),
            **self.OPTIONS,
        )
        assert [f.rule for f in result.findings] == ["shared-state"]
        finding = result.findings[0]
        assert finding.path == "src/pkg/state.py"
        assert "pkg.state.COUNTER" in finding.message
        assert "pkg.worker._task" in finding.message

    def test_allowlisted_global_ok(self, tmp_path):
        result = run_flow_lint(
            tmp_path,
            SHARED_STATE_PKG,
            enabled=("shared-state",),
            **{
                "shared-state": {
                    "roots": ["pkg.worker._task"],
                    "allowed": ["pkg.state.COUNTER"],
                }
            },
        )
        assert result.findings == []

    def test_unreachable_global_write_ok(self, tmp_path):
        files = dict(SHARED_STATE_PKG)
        files["src/pkg/worker.py"] = """
            def _task(chunk):
                return chunk
            """
        result = run_flow_lint(
            tmp_path, files, enabled=("shared-state",), **self.OPTIONS
        )
        assert result.findings == []

    def test_pragma_suppresses_program_finding(self, tmp_path):
        files = dict(SHARED_STATE_PKG)
        files["src/pkg/state.py"] = """
            COUNTER = 0

            def bump():
                global COUNTER
                COUNTER += 1  # lint: disable=shared-state (test fixture)
            """
        result = run_flow_lint(
            tmp_path, files, enabled=("shared-state",), **self.OPTIONS
        )
        assert result.findings == []
        assert result.suppressed == 1


class TestTransitiveDeterminismRule:
    FILES = {
        "src/pkg/__init__.py": "",
        "src/pkg/mod.py": """
            import time

            def api():
                return _leaf()

            def _leaf():
                return time.time()
            """,
    }

    def test_flagged_at_public_boundary_not_leaf(self, tmp_path):
        result = run_flow_lint(
            tmp_path, self.FILES, enabled=("transitive-determinism",)
        )
        assert [f.rule for f in result.findings] == ["transitive-determinism"]
        finding = result.findings[0]
        assert "api" in finding.message
        assert "pkg.mod._leaf" in finding.message
        # The finding sits on the public def, not on the leaf call.
        assert finding.line == 4

    def test_direct_leaf_not_double_flagged(self, tmp_path):
        files = {
            "src/pkg/__init__.py": "",
            "src/pkg/mod.py": """
                import time

                def api():
                    return time.time()
                """,
        }
        result = run_flow_lint(
            tmp_path, files, enabled=("transitive-determinism",)
        )
        # The per-file wall-clock rule owns direct reads.
        assert result.findings == []

    def test_minimal_public_boundary_owns_the_finding(self, tmp_path):
        files = {
            "src/pkg/__init__.py": "",
            "src/pkg/mod.py": """
                import random

                def outer():
                    return inner()

                def inner():
                    return _leaf()

                def _leaf():
                    return random.random()
                """,
        }
        result = run_flow_lint(
            tmp_path, files, enabled=("transitive-determinism",)
        )
        assert [(f.rule, f.line) for f in result.findings] == [
            ("transitive-determinism", 7)
        ]


class TestLayeringRule:
    def test_upward_import_flagged(self, tmp_path):
        result = run_flow_lint(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/low.py": "from pkg import high\n",
                "src/pkg/high.py": "",
            },
            enabled=("layering",),
            **{"layering": {"layers": [["pkg.low"], ["pkg.high"]]}},
        )
        assert [f.rule for f in result.findings] == ["layering"]
        assert result.findings[0].path == "src/pkg/low.py"
        assert "pkg.high" in result.findings[0].message

    def test_downward_import_ok(self, tmp_path):
        result = run_flow_lint(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/low.py": "",
                "src/pkg/high.py": "from pkg import low\n",
            },
            enabled=("layering",),
            **{"layering": {"layers": [["pkg.low"], ["pkg.high"]]}},
        )
        assert result.findings == []

    def test_import_cycle_flagged_even_within_a_tier(self, tmp_path):
        result = run_flow_lint(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/x.py": "from pkg import y\n",
                "src/pkg/y.py": "from pkg import x\n",
            },
            enabled=("layering",),
            **{"layering": {"layers": [["pkg"]]}},
        )
        assert [f.rule for f in result.findings] == ["layering"]
        assert "import cycle" in result.findings[0].message


class TestServeTierFixtures:
    """The serve tier (PR 8): above the analysis tiers, below the CLI."""

    LAYERS = {
        "layering": {
            "layers": [["pkg.analysis"], ["pkg.serve"], ["pkg.cli"]]
        }
    }

    def test_serve_importing_cli_flagged(self, tmp_path):
        result = run_flow_lint(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/analysis.py": "",
                "src/pkg/serve.py": "from pkg import cli\n",
                "src/pkg/cli.py": "",
            },
            enabled=("layering",),
            **self.LAYERS,
        )
        assert [f.rule for f in result.findings] == ["layering"]
        assert result.findings[0].path == "src/pkg/serve.py"
        assert "pkg.cli" in result.findings[0].message

    def test_cli_embeds_serve_and_serve_uses_analysis(self, tmp_path):
        result = run_flow_lint(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/analysis.py": "",
                "src/pkg/serve.py": "from pkg import analysis\n",
                "src/pkg/cli.py": "from pkg import serve\n",
            },
            enabled=("layering",),
            **self.LAYERS,
        )
        assert result.findings == []

    SERVER_STATE_PKG = {
        "src/pkg/__init__.py": "",
        "src/pkg/server.py": """
            _ACTIVE_SERVER = None

            def run_server():
                global _ACTIVE_SERVER
                _ACTIVE_SERVER = object()
            """,
        "src/pkg/cli.py": """
            from pkg.server import run_server

            def _cmd_serve():
                run_server()
            """,
    }

    def test_server_session_global_needs_allowlisting(self, tmp_path):
        result = run_flow_lint(
            tmp_path,
            self.SERVER_STATE_PKG,
            enabled=("shared-state",),
            **{"shared-state": {"roots": ["pkg.cli._cmd_*"], "allowed": []}},
        )
        assert [f.rule for f in result.findings] == ["shared-state"]
        assert "pkg.server._ACTIVE_SERVER" in result.findings[0].message
        assert "pkg.cli._cmd_serve" in result.findings[0].message

    def test_allowlisted_server_session_global_ok(self, tmp_path):
        result = run_flow_lint(
            tmp_path,
            self.SERVER_STATE_PKG,
            enabled=("shared-state",),
            **{
                "shared-state": {
                    "roots": ["pkg.cli._cmd_*"],
                    "allowed": ["pkg.server._ACTIVE_SERVER"],
                }
            },
        )
        assert result.findings == []

    def test_repo_config_wires_the_serve_tier(self):
        from repro.lint.config import (
            DEFAULT_LAYERS,
            DEFAULT_SHARED_STATE_ALLOWED,
            load_config,
        )

        tiers = list(DEFAULT_LAYERS)
        serve_index = tiers.index(("repro.serve",))
        cli_index = next(
            index for index, tier in enumerate(tiers) if "repro.cli" in tier
        )
        assert serve_index == cli_index - 1
        assert "repro.serve.server._ACTIVE_SERVER" in DEFAULT_SHARED_STATE_ALLOWED

        # pyproject.toml mirrors the defaults, entry for entry.
        config = load_config(root=REPO_ROOT)
        assert ("repro.serve",) in tuple(config.layering_layers())
        assert (
            "repro.serve.server._ACTIVE_SERVER" in config.shared_state_allowed()
        )
        assert "src/repro/serve/loadgen.py" in config.obs_allowed_paths()

    def test_repo_config_wires_the_scenarios_tier(self):
        """The scenario registry is tiered between synth and metrics.

        ``repro.scenarios`` imports the synth builders and is imported by
        analysis/serve/cli, so it must sit strictly above the synth tier
        and strictly below analysis — in both the baked-in defaults and
        the pyproject mirror (they must stay in lockstep).
        """
        from repro.lint.config import (
            DEFAULT_LAYERS,
            DEFAULT_SHARED_STATE_ALLOWED,
            load_config,
        )

        tiers = list(DEFAULT_LAYERS)
        scenarios_index = tiers.index(("repro.scenarios",))
        synth_index = next(
            index for index, tier in enumerate(tiers) if "repro.synth" in tier
        )
        analysis_index = next(
            index for index, tier in enumerate(tiers) if "repro.analysis" in tier
        )
        assert synth_index < scenarios_index < analysis_index
        assert (
            "repro.scenarios.registry._REGISTRY" in DEFAULT_SHARED_STATE_ALLOWED
        )

        config = load_config(root=REPO_ROOT)
        assert tuple(config.layering_layers()) == tuple(DEFAULT_LAYERS)
        assert tuple(config.shared_state_allowed()) == tuple(
            DEFAULT_SHARED_STATE_ALLOWED
        )

    def test_registry_style_upward_import_flagged(self, tmp_path):
        """A registry-shaped mid-tier module importing upward is caught."""
        files = {
            "src/pkg/__init__.py": "",
            "src/pkg/synth.py": "def build():\n    return 1\n",
            "src/pkg/scenarios.py": """
                from pkg.analysis import drive

                def resolve():
                    return drive()
                """,
            "src/pkg/analysis.py": """
                def drive():
                    return 2
                """,
        }
        result = run_flow_lint(
            tmp_path,
            files,
            enabled=("layering",),
            **{
                "layering": {
                    "layers": [
                        ["pkg.synth"],
                        ["pkg.scenarios"],
                        ["pkg.analysis"],
                    ]
                }
            },
        )
        assert [f.rule for f in result.findings] == ["layering"]
        assert "pkg.analysis" in result.findings[0].message


class TestDeadCodeRule:
    def test_unreachable_private_function_flagged(self, tmp_path):
        result = run_flow_lint(
            tmp_path, CYCLIC_PKG, enabled=("dead-code",)
        )
        assert [f.rule for f in result.findings] == ["dead-code"]
        assert "_dead_helper" in result.findings[0].message

    def test_test_reference_keeps_private_function_alive(self, tmp_path):
        files = dict(CYCLIC_PKG)
        files["tests/test_a.py"] = """
            from pkg.a import _dead_helper

            def test_helper():
                assert _dead_helper() == 1
            """
        result = run_flow_lint(
            tmp_path,
            files,
            enabled=("dead-code",),
            **{"dead-code": {"references": ["tests"]}},
        )
        assert result.findings == []

    def test_getattr_string_keeps_method_alive(self, tmp_path):
        result = run_flow_lint(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/mod.py": """
                    class Handler:
                        def _on_start(self):
                            return 1

                    def dispatch(handler, event):
                        return getattr(handler, "_on_" + event, None)

                    def boot(handler):
                        return dispatch(handler, "_on_start")
                    """,
            },
            enabled=("dead-code",),
            **{"dead-code": {"references": []}},
        )
        assert result.findings == []

    def test_decorated_private_function_is_a_root(self, tmp_path):
        result = run_flow_lint(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/mod.py": """
                    def register(fn):
                        return fn

                    @register
                    def _plugin():
                        return 1
                    """,
            },
            enabled=("dead-code",),
            **{"dead-code": {"references": []}},
        )
        assert result.findings == []


class TestFlowCache:
    ENABLED = ("shared-state", "dead-code", "wall-clock")
    OPTIONS = {
        "shared-state": {"roots": ["pkg.worker._task"], "allowed": []},
        "dead-code": {"references": []},
    }

    def test_warm_run_equals_cold_run(self, tmp_path):
        cache = FlowCache(tmp_path / ".lint-cache.json")
        cold = run_flow_lint(
            tmp_path,
            SHARED_STATE_PKG,
            enabled=self.ENABLED,
            cache=cache,
            **self.OPTIONS,
        )
        assert (tmp_path / ".lint-cache.json").is_file()
        warm = run_flow_lint(
            tmp_path,
            SHARED_STATE_PKG,
            enabled=self.ENABLED,
            cache=FlowCache(tmp_path / ".lint-cache.json"),
            **self.OPTIONS,
        )
        assert warm.findings == cold.findings
        assert warm.suppressed == cold.suppressed
        assert warm.files == cold.files

    def test_content_change_invalidates(self, tmp_path):
        cache_path = tmp_path / ".lint-cache.json"
        run_flow_lint(
            tmp_path,
            SHARED_STATE_PKG,
            enabled=self.ENABLED,
            cache=FlowCache(cache_path),
            **self.OPTIONS,
        )
        files = dict(SHARED_STATE_PKG)
        files["src/pkg/worker.py"] = """
            import time
            from pkg.state import bump

            def _task(chunk):
                bump()
                return time.time()
            """
        result = run_flow_lint(
            tmp_path,
            files,
            enabled=self.ENABLED,
            cache=FlowCache(cache_path),
            **self.OPTIONS,
        )
        assert sorted({f.rule for f in result.findings}) == [
            "shared-state",
            "wall-clock",
        ]

    def test_config_change_invalidates(self, tmp_path):
        cache_path = tmp_path / ".lint-cache.json"
        run_flow_lint(
            tmp_path,
            SHARED_STATE_PKG,
            enabled=self.ENABLED,
            cache=FlowCache(cache_path),
            **self.OPTIONS,
        )
        result = run_flow_lint(
            tmp_path,
            SHARED_STATE_PKG,
            enabled=self.ENABLED,
            cache=FlowCache(cache_path),
            **{
                "shared-state": {
                    "roots": ["pkg.worker._task"],
                    "allowed": ["pkg.state.COUNTER"],
                },
                "dead-code": {"references": []},
            },
        )
        assert [f.rule for f in result.findings] == []

    def test_corrupt_cache_degrades_to_cold(self, tmp_path):
        cache_path = tmp_path / ".lint-cache.json"
        cache_path.write_text("{not json", encoding="utf-8")
        result = run_flow_lint(
            tmp_path,
            SHARED_STATE_PKG,
            enabled=self.ENABLED,
            cache=FlowCache(cache_path),
            **self.OPTIONS,
        )
        assert [f.rule for f in result.findings] == ["shared-state"]


def _run_cli(args: list[str], *, hashseed: str) -> str:
    env = {
        "PYTHONPATH": str(REPO_ROOT / "src"),
        "PATH": "/usr/bin:/bin",
        "PYTHONHASHSEED": hashseed,
    }
    completed = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


class TestGraphCli:
    def test_graph_json_byte_identical_across_hash_seeds(self):
        args = ["lint", "graph", "--format", "json", "--effects", "--no-cache"]
        first = _run_cli(args, hashseed="1")
        second = _run_cli(args, hashseed="4242")
        assert first == second
        document = json.loads(first)
        assert document["schema"] == 1
        assert document["counts"]["modules"] > 50
        assert document["import_cycles"] == []

    def test_check_cycles_passes_on_this_repo(self):
        _run_cli(
            ["lint", "graph", "--check-cycles", "--no-cache"], hashseed="0"
        )

    def test_why_renders_an_entry_chain(self, tmp_path):
        analysis = analysis_for(
            tmp_path,
            SHARED_STATE_PKG,
            **{"shared-state": {"roots": ["pkg.worker._task"], "allowed": []}},
        )
        text = render_why(analysis, "pkg.state.bump")
        assert "pkg.worker._task -> pkg.state.bump" in text
        assert "global-write: pkg.state.COUNTER" in text

    def test_why_unknown_function_suggests(self, tmp_path):
        analysis = analysis_for(tmp_path, SHARED_STATE_PKG)
        text = render_why(analysis, "no.such.function")
        assert "unknown function" in text

    def test_render_json_stable_under_dict_order(self, tmp_path):
        analysis = analysis_for(tmp_path, CYCLIC_PKG)
        assert render_graph_json(analysis) == render_graph_json(analysis)
