"""Golden parity: every served endpoint equals its CLI twin, byte for byte.

Each test runs the real CLI in a subprocess (fresh interpreter, fresh
engine) with ``--format json`` and compares its stdout to the HTTP
response body from the session's warm server.  Both sides render through
:func:`repro.serve.payloads.render_payload`, so any drift between the
service and the paper pipeline — a changed default, a reordered field, a
different engine mode — fails these tests at the byte level.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import urllib.request
from pathlib import Path

import pytest

PROJECT_ROOT = Path(__file__).resolve().parents[1]


def run_cli(*args: str) -> bytes:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=PROJECT_ROOT,
    )
    assert result.returncode == 0, result.stderr.decode()
    return result.stdout


def http_body(server, path: str) -> bytes:
    with urllib.request.urlopen(server.url + path, timeout=60) as response:
        assert response.status == 200
        return response.read()


@pytest.mark.parametrize(
    "cli_args, path",
    [
        (("table1", "--format", "json"), "/rankings"),
        (("table1", "--format", "json", "--date", "2019-01-01"), "/rankings?date=2019-01-01"),
        (("table3", "--format", "json"), "/apa"),
        (("timeline", "--format", "json"), "/timeline"),
        (("search", "--format", "json"), "/search"),
        (("search", "--format", "json", "--active-on", "2016-01-01"), "/search?active_on=2016-01-01"),
    ],
)
def test_endpoint_matches_cli_stdout(serve_server, cli_args, path):
    assert http_body(serve_server, path) == run_cli(*cli_args)


def test_map_matches_export_geojson(serve_server, tmp_path):
    run_cli(
        "export", "New Line Networks", "--output-dir", str(tmp_path)
    )
    exported = json.loads(
        (tmp_path / "new_line_networks_2020-04-01.geojson").read_text()
    )
    served = json.loads(http_body(serve_server, "/map"))
    assert served["type"] == exported["type"] == "FeatureCollection"
    assert served["features"] == exported["features"]


def test_timeline_json_is_jobs_invariant(serve_server):
    # The CLI's --jobs fan-out must not change the canonical payload the
    # server is held to.
    serial = run_cli("timeline", "--format", "json")
    threaded = http_body(serve_server, "/timeline")
    assert serial == threaded
