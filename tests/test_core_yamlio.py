"""Tests for YAML serialisation of reconstructed networks."""

from __future__ import annotations

import datetime as dt

import pytest
import yaml

from repro.core.reconstruction import NetworkReconstructor
from repro.core.corridor import chicago_nj_corridor
from repro.core.yamlio import (
    network_from_dict,
    network_from_yaml,
    network_to_dict,
    network_to_yaml,
)
from tests.test_core_reconstruction import _chain_licenses

CORRIDOR = chicago_nj_corridor()


@pytest.fixture()
def network():
    reconstructor = NetworkReconstructor(CORRIDOR)
    return reconstructor.reconstruct(_chain_licenses(), dt.date(2020, 4, 1))


class TestSerialisation:
    def test_dict_contains_paper_fields(self, network):
        data = network_to_dict(network)
        assert data["licensee"] == "Demo Net"
        assert data["as_of"] == "2020-04-01"
        # §1: coordinates and heights, link lengths, frequencies.
        tower = data["towers"][0]
        assert {"latitude", "longitude", "structure_height_m"} <= set(tower)
        link = data["links"][0]
        assert {"towers", "length_km", "frequencies_ghz", "licenses"} <= set(link)

    def test_yaml_text_is_human_readable(self, network):
        text = network_to_yaml(network)
        assert "licensee: Demo Net" in text
        assert "fiber_tails:" in text
        # Safe-loadable and structurally intact.
        assert yaml.safe_load(text)["format_version"] == 1

    def test_roundtrip_preserves_routing(self, network):
        text = network_to_yaml(network)
        back = network_from_yaml(text)
        original = network.lowest_latency_route("CME", "NY4")
        restored = back.lowest_latency_route("CME", "NY4")
        # YAML rounds lengths to the millimetre; allow a nanosecond.
        assert restored.latency_s == pytest.approx(original.latency_s, abs=1e-9)
        assert restored.tower_count == original.tower_count

    def test_roundtrip_preserves_frequencies(self, network):
        back = network_from_yaml(network_to_yaml(network))
        assert back.links[0].frequencies_mhz == network.links[0].frequencies_mhz

    def test_file_roundtrip(self, network, tmp_path):
        path = tmp_path / "net.yaml"
        network_to_yaml(network, path)
        back = network_from_yaml(path)
        assert back.licensee == network.licensee

    def test_version_check(self, network):
        data = network_to_dict(network)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            network_from_dict(data)

    def test_latency_model_roundtrips(self, network):
        slower = network.with_latency_model(
            network.latency_model.__class__(per_tower_overhead_s=1e-6)
        )
        back = network_from_yaml(network_to_yaml(slower))
        assert back.latency_model.per_tower_overhead_s == pytest.approx(1e-6)
