"""Columnar kernel: element-wise identity to the object kernel.

The load-bearing property of the flat-array cold path
(:func:`repro.core.columnar.reconstruct_columnar` over a
:class:`repro.uls.columnar.ColumnarLicenseStore`): for ANY license set,
date and parameterisation, its output equals the object kernel's —
every tower, link and fiber tail, ids, ordering and floats included.
Alongside the property, this module pins the supporting contracts: the
batch geodesy kernels are bit-identical to the scalar path, the store
is cached per database generation (and rebuilt, never pickled, across
process boundaries), and the engine's ``kernel=`` switch changes speed
only — never cache keys or results.
"""

from __future__ import annotations

import datetime as dt
import itertools
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.columnar import reconstruct_columnar
from repro.core.corridor import chicago_nj_corridor
from repro.core.engine import CorridorEngine
from repro.core import engine as engine_mod
from repro.core.network import HftNetwork
from repro.core.reconstruction import NetworkReconstructor
from repro.geodesy import GeoPoint, geodesic_inverse
from repro.geodesy.batch import inverse_batch, inverse_trig, reduced_latitude_trig
from repro.geodesy.memo import GeodesicMemo, use_memo
from repro.uls.database import UlsDatabase

from tests.conftest import make_license

_LICENSEES = (
    "New Line Networks",
    "Webline Holdings",
    "Jefferson Microwave",
    "Pierce Broadband",
    "National Tower Company",
    "Midwest Relay Partners",
)


def _assert_networks_equal(columnar: HftNetwork, obj: HftNetwork) -> None:
    """Element-wise equality: ids, ordering, metadata and floats."""
    assert columnar.licensee == obj.licensee
    assert columnar.as_of == obj.as_of
    assert list(columnar.towers) == list(obj.towers)  # ids, in order
    assert columnar.towers == obj.towers
    assert list(columnar.links) == list(obj.links)
    assert list(columnar.fiber_tails) == list(obj.fiber_tails)


def _reconstruct_both(
    database: UlsDatabase, recon: NetworkReconstructor, licensee: str, on_date: dt.date
) -> tuple[HftNetwork, HftNetwork]:
    columnar = reconstruct_columnar(
        database.columnar_store(),
        licensee,
        on_date,
        corridor=recon.corridor,
        latency_model=recon.latency_model,
        stitch_tolerance_m=recon.stitch_tolerance_m,
        max_fiber_tail_m=recon.max_fiber_tail_m,
        fiber_mode=recon.fiber_mode,
    )
    obj = recon.reconstruct_licensee(database, licensee, on_date)
    return columnar, obj


# ----------------------------------------------------------------------
# Property: columnar == object, element-wise
# ----------------------------------------------------------------------


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    licensee=st.sampled_from(_LICENSEES),
    on_date=st.dates(dt.date(2010, 1, 1), dt.date(2020, 12, 31)),
)
def test_columnar_matches_object_over_scenario(scenario, licensee, on_date):
    recon = NetworkReconstructor(scenario.corridor)
    columnar, obj = _reconstruct_both(scenario.database, recon, licensee, on_date)
    _assert_networks_equal(columnar, obj)


# Randomised license sets: coordinates cluster around a handful of bases
# with jitters from exactly-coincident (0.0: the uid zero-distance fast
# path) through tens of metres (in-tolerance stitch probes) to ~450 m
# (cross-cell probes; beyond the solution table at large tolerances, so
# the inline Vincenty fallback is exercised too).
_BASES = ((41.75, -88.18), (41.60, -87.80), (41.20, -86.40), (40.72, -74.18))
_JITTER = (0.0, 1.0e-4, -1.0e-4, 2.7e-4, 4.0e-3)

_POINT = st.builds(
    lambda base, d_lat, d_lon: (base[0] + d_lat, base[1] + d_lon),
    st.sampled_from(_BASES),
    st.sampled_from(_JITTER),
    st.sampled_from(_JITTER),
)

_CHAIN = st.lists(_POINT, min_size=1, max_size=4)


@settings(max_examples=30, deadline=None)
@given(
    chains=st.lists(_CHAIN, min_size=1, max_size=5),
    tolerance=st.sampled_from([10.0, 30.0, 100.0, 500.0]),
    tail=st.sampled_from([0.0, 10_000.0, 50_000.0]),
    mode=st.sampled_from(["nearest", "all"]),
    on_date=st.dates(dt.date(2014, 1, 1), dt.date(2021, 1, 1)),
)
def test_columnar_matches_object_on_random_networks(
    chains, tolerance, tail, mode, on_date
):
    database = UlsDatabase()
    database.extend(
        make_license(
            license_id=f"L{index:04d}",
            licensee="Prop Networks",
            points=tuple(chain),
        )
        for index, chain in enumerate(chains)
    )
    recon = NetworkReconstructor(
        chicago_nj_corridor(),
        stitch_tolerance_m=tolerance,
        max_fiber_tail_m=tail,
        fiber_mode=mode,
    )
    columnar, obj = _reconstruct_both(database, recon, "Prop Networks", on_date)
    _assert_networks_equal(columnar, obj)


# ----------------------------------------------------------------------
# Degenerate cases
# ----------------------------------------------------------------------


def _small_database() -> UlsDatabase:
    database = UlsDatabase()
    database.extend(
        [
            make_license(license_id="L0001"),
            # A degenerate path: tx and rx at the identical coordinate.
            make_license(
                license_id="L0002",
                points=((41.75, -88.18), (41.75, -88.18)),
            ),
            # A single location, no paths at all.
            make_license(license_id="L0003", points=((41.90, -87.90),)),
        ]
    )
    return database


@pytest.mark.parametrize(
    "licensee, on_date",
    [
        ("Test Networks LLC", dt.date(2020, 4, 1)),  # all three active
        ("Test Networks LLC", dt.date(2014, 1, 1)),  # before every grant
        ("No Such Networks", dt.date(2020, 4, 1)),  # unknown licensee
    ],
)
def test_degenerate_cases_match_object(licensee, on_date):
    recon = NetworkReconstructor(chicago_nj_corridor())
    columnar, obj = _reconstruct_both(_small_database(), recon, licensee, on_date)
    _assert_networks_equal(columnar, obj)


@pytest.mark.parametrize(
    "overrides, message",
    [
        ({"stitch_tolerance_m": 0.0}, "tolerance must be positive"),
        ({"stitch_tolerance_m": -5.0}, "tolerance must be positive"),
        ({"max_fiber_tail_m": -1.0}, "max tail length cannot be negative"),
        ({"fiber_mode": "bogus"}, "unknown fiber attachment mode: 'bogus'"),
    ],
)
def test_columnar_validation_matches_object_messages(overrides, message):
    """Both kernels reject bad parameters with the identical message."""
    database = _small_database()
    params = {
        "stitch_tolerance_m": 30.0,
        "max_fiber_tail_m": 10_000.0,
        "fiber_mode": "nearest",
    }
    params.update(overrides)
    corridor = chicago_nj_corridor()
    recon = NetworkReconstructor(corridor)
    with pytest.raises(ValueError, match=message.replace("(", "\\(")):
        reconstruct_columnar(
            database.columnar_store(),
            "Test Networks LLC",
            dt.date(2020, 4, 1),
            corridor=corridor,
            latency_model=recon.latency_model,
            **params,
        )


# ----------------------------------------------------------------------
# Store invariants
# ----------------------------------------------------------------------


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    licensee=st.sampled_from(_LICENSEES),
    on_date=st.dates(dt.date(2010, 1, 1), dt.date(2020, 12, 31)),
)
def test_store_fingerprint_equals_object_scan(scenario, licensee, on_date):
    """active_ids (the full-rebuild cache-key column) == is_active scan."""
    store = scenario.database.columnar_store()
    expected = frozenset(
        lic.license_id
        for lic in scenario.database.licenses_for(licensee)
        if lic.is_active(on_date)
    )
    assert store.active_ids(licensee, on_date) == expected


def test_store_cached_per_generation():
    database = _small_database()
    store = database.columnar_store()
    assert database.columnar_store() is store
    assert store.generation == database.generation

    database.add(make_license(license_id="L0099"))
    rebuilt = database.columnar_store()
    assert rebuilt is not store  # a mutation invalidates the store
    assert rebuilt.generation == database.generation
    assert "L0099" in rebuilt.license_ids


def test_store_rebuilt_after_pickle_not_shipped():
    """Workers rebuild their own store from the shipped records."""
    database = _small_database()
    original = database.columnar_store()
    shipped = pickle.loads(pickle.dumps(database))
    assert shipped._columnar_store is None  # derived columns not pickled
    rebuilt = shipped.columnar_store()
    assert rebuilt.license_ids == original.license_ids
    on_date = dt.date(2020, 4, 1)
    assert rebuilt.active_ids("Test Networks LLC", on_date) == original.active_ids(
        "Test Networks LLC", on_date
    )


def test_cells_for_cached_per_tolerance():
    store = _small_database().columnar_store()
    cells = store.cells_for(30.0)
    assert store.cells_for(30.0) is cells
    assert len(cells) == len(store.ep_lat)
    assert store.cells_for(100.0) is not cells


def test_uid_and_solution_table_invariants(scenario):
    """Equal uids ⟺ bitwise-equal coordinates; keys are packed pairs of
    distinct uids; every stored solution is bit-identical to the scalar
    kernel on the same pair, in the same direction."""
    store = scenario.database.columnar_store()
    coord_of: dict[int, tuple[float, float]] = {}
    representative: dict[int, int] = {}
    for row, uid in enumerate(store.ep_uid):
        coord = (store.ep_lat[row], store.ep_lon[row])
        assert coord_of.setdefault(uid, coord) == coord
        representative.setdefault(uid, row)
    assert len(coord_of) == store.n_coords
    # Distinct uids carry distinct coordinates.
    assert len(set(coord_of.values())) == store.n_coords

    n = store.n_coords
    for key, solution in itertools.islice(store.solutions.items(), 64):
        uid_a, uid_b = divmod(key, n)
        assert uid_a != uid_b and uid_a < n and uid_b < n
        scalar = geodesic_inverse(
            store.ep_point[representative[uid_a]],
            store.ep_point[representative[uid_b]],
        )
        assert solution == scalar  # bit-identical, not approximately equal


# ----------------------------------------------------------------------
# Batch geodesy: bit-identity to the scalar kernel
# ----------------------------------------------------------------------

_BATCH_COORDS = [
    (41.8, -87.6),
    (40.7, -74.0),
    (41.8, -87.6),  # duplicate of row 0: the coincident-point guard
    (0.0, 0.0),  # equatorial geodesic (cos²α == 0 branch)
    (0.0, 179.99),
    (-41.79, 92.41),  # nearly antipodal to row 0: spherical fallback
]


def test_inverse_batch_bit_identical_to_scalar():
    lats = [lat for lat, _ in _BATCH_COORDS]
    lons = [lon for _, lon in _BATCH_COORDS]
    pairs = [
        (i, j) for i in range(len(lats)) for j in range(len(lats)) if i != j
    ]
    solutions = inverse_batch(lats, lons, pairs)
    for (i, j), solution in zip(pairs, solutions):
        scalar = geodesic_inverse(GeoPoint(lats[i], lons[i]), GeoPoint(lats[j], lons[j]))
        assert solution == scalar


def test_inverse_trig_matches_scalar_per_pair():
    a, b = (41.75, -88.18), (40.72, -74.18)
    sin_u1, cos_u1 = reduced_latitude_trig(a[0])
    sin_u2, cos_u2 = reduced_latitude_trig(b[0])
    solution = inverse_trig(a[0], a[1], b[0], b[1], sin_u1, cos_u1, sin_u2, cos_u2)
    assert solution == geodesic_inverse(GeoPoint(*a), GeoPoint(*b))
    # Coincident points short-circuit to the exact zero solution.
    zero = inverse_trig(a[0], a[1], a[0], a[1], sin_u1, cos_u1, sin_u1, cos_u1)
    assert zero == (0.0, 0.0, 0.0)


def test_inverse_batch_memo_semantics():
    """The batch consults and feeds a memo with the scalar accounting."""
    memo = GeodesicMemo(maxsize=64)
    lats = [41.8, 40.7]
    lons = [-87.6, -74.0]
    solutions = inverse_batch(lats, lons, [(0, 1), (0, 1), (1, 0)], memo=memo)
    assert solutions[0] == solutions[1]
    assert memo.hits == 1 and memo.misses == 2  # repeat pair hit in-batch
    # The scalar path hits entries the batch stored, bit-identically.
    with use_memo(memo):
        scalar = geodesic_inverse(GeoPoint(41.8, -87.6), GeoPoint(40.7, -74.0))
    assert scalar == solutions[0]
    assert memo.hits == 2


def test_inverse_batch_rejects_ragged_columns():
    with pytest.raises(ValueError):
        inverse_batch([41.8], [-87.6, -74.0], [(0, 0)])


# ----------------------------------------------------------------------
# Engine kernel selection
# ----------------------------------------------------------------------


def test_engine_kernels_produce_equal_snapshots(scenario):
    columnar = CorridorEngine(scenario.database, scenario.corridor, kernel="columnar")
    obj = CorridorEngine(scenario.database, scenario.corridor, kernel="object")
    for licensee, on_date in (
        ("New Line Networks", dt.date(2020, 4, 1)),
        ("Pierce Broadband", dt.date(2019, 6, 1)),
    ):
        _assert_networks_equal(
            columnar.snapshot(licensee, on_date), obj.snapshot(licensee, on_date)
        )
        # The kernel is not part of any cache key: snapshots built by
        # either kernel are interchangeable.
        assert columnar.snapshot_key(licensee, on_date) == obj.snapshot_key(
            licensee, on_date
        )
    assert columnar.params_key == obj.params_key


def test_engine_rejects_unknown_kernel(scenario):
    with pytest.raises(ValueError, match="unknown reconstruction kernel"):
        CorridorEngine(scenario.database, scenario.corridor, kernel="vectorised")


def test_with_params_carries_kernel(scenario):
    engine = CorridorEngine(scenario.database, scenario.corridor, kernel="object")
    assert engine.with_params(fiber_mode="all").kernel == "object"


def test_kernel_default_governs_construction(scenario, monkeypatch):
    monkeypatch.setattr(engine_mod, "KERNEL_DEFAULT", "object")
    assert CorridorEngine(scenario.database, scenario.corridor).kernel == "object"
    monkeypatch.setattr(engine_mod, "KERNEL_DEFAULT", "columnar")
    assert CorridorEngine(scenario.database, scenario.corridor).kernel == "columnar"


def test_scan_fingerprint_equal_across_kernels(scenario):
    """Full-rebuild engines fingerprint identically on either kernel."""
    columnar = CorridorEngine(
        scenario.database, scenario.corridor, incremental=False, kernel="columnar"
    )
    obj = CorridorEngine(
        scenario.database, scenario.corridor, incremental=False, kernel="object"
    )
    for on_date in (dt.date(2016, 1, 1), dt.date(2020, 4, 1)):
        for licensee in _LICENSEES:
            assert columnar.active_fingerprint(
                licensee, on_date
            ) == obj.active_fingerprint(licensee, on_date)


def test_snapshot_from_licenses_equal_across_kernels(scenario):
    """The explicit-license-set path (funnel, entity pooling) too."""
    pooled = list(
        scenario.database.licenses_for("New Line Networks")
    ) + list(scenario.database.licenses_for("Webline Holdings"))
    on_date = dt.date(2020, 4, 1)
    columnar = CorridorEngine(
        scenario.database, scenario.corridor, kernel="columnar"
    ).snapshot_from_licenses(pooled, on_date, licensee="Pooled Entity")
    obj = CorridorEngine(
        scenario.database, scenario.corridor, kernel="object"
    ).snapshot_from_licenses(pooled, on_date, licensee="Pooled Entity")
    _assert_networks_equal(columnar, obj)


def test_columnar_kernel_emits_obs_counters():
    database = _small_database()
    with obs.capture() as cap:
        engine = CorridorEngine(database, chicago_nj_corridor(), kernel="columnar")
        engine.snapshot("Test Networks LLC", dt.date(2020, 4, 1))
        counters = cap.counters()
    assert counters["kernel.columnar.store.build"] >= 1
    assert counters["kernel.columnar.snapshot"] == 1
    assert counters["kernel.columnar.stitch.probes"] >= 0  # key present
    assert "kernel.columnar.fiber.pruned" in counters


# ----------------------------------------------------------------------
# CLI: --kernel flips the process default, stdout stays byte-identical
# ----------------------------------------------------------------------


def test_cli_kernel_flag_stdout_identical(capsys, monkeypatch):
    from repro.cli import main

    # main() writes the flag through to KERNEL_DEFAULT; restore it so the
    # flip cannot leak into other tests.
    monkeypatch.setattr(engine_mod, "KERNEL_DEFAULT", engine_mod.KERNEL_DEFAULT)
    assert main(["table1", "--kernel", "object"]) == 0
    object_out = capsys.readouterr().out
    assert main(["table1", "--kernel", "columnar"]) == 0
    columnar_out = capsys.readouterr().out
    assert columnar_out == object_out
    assert "New Line Networks" in object_out
