"""Tests for alternate path availability on controlled topologies."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.core.corridor import DataCenterSite
from repro.core.network import FiberTail, HftNetwork, MicrowaveLink, Tower
from repro.geodesy import GeoPoint, geodesic_distance, geodesic_interpolate
from repro.geodesy.path import offset_point
from repro.metrics.apa import alternate_path_availability, apa_percent, latency_bound_s

WEST = DataCenterSite("CME", GeoPoint(41.7580, -88.1801))
EAST = DataCenterSite("NY4", GeoPoint(40.7773, -74.0700))


def _network(n_links: int = 10, bypassed: tuple[int, ...] = (), stretch_amp: float = 0.0):
    """A corridor chain with optional parallel bypasses of given links."""
    margin = 0.001
    fractions = [margin + f * (1 - 2 * margin) / n_links for f in range(n_links + 1)]
    chain = geodesic_interpolate(WEST.point, EAST.point, fractions)
    towers = [Tower(f"t{i}", p) for i, p in enumerate(chain)]
    links = [
        MicrowaveLink(f"t{i}", f"t{i+1}", geodesic_distance(a, b))
        for i, (a, b) in enumerate(zip(chain, chain[1:]))
    ]
    for index in bypassed:
        b_point = offset_point(chain[index], chain[index + 1], 0.5, 5_000.0 + stretch_amp)
        towers.append(Tower(f"b{index}", b_point))
        links.append(
            MicrowaveLink(f"t{index}", f"b{index}", geodesic_distance(chain[index], b_point))
        )
        links.append(
            MicrowaveLink(
                f"b{index}", f"t{index+1}", geodesic_distance(b_point, chain[index + 1])
            )
        )
    tails = [
        FiberTail("CME", "t0", geodesic_distance(WEST.point, chain[0])),
        FiberTail("NY4", f"t{n_links}", geodesic_distance(EAST.point, chain[-1])),
    ]
    return HftNetwork(
        "Demo", dt.date(2020, 4, 1), towers, links, tails, [WEST, EAST]
    )


class TestApa:
    def test_pure_chain_scores_zero(self):
        assert alternate_path_availability(_network(), "CME", "NY4") == 0.0

    def test_fully_bypassed_chain_scores_one(self):
        network = _network(n_links=6, bypassed=tuple(range(6)))
        assert alternate_path_availability(network, "CME", "NY4") == 1.0

    def test_partial_coverage_fraction(self):
        network = _network(n_links=10, bypassed=(2, 5, 7))
        assert alternate_path_availability(network, "CME", "NY4") == pytest.approx(0.3)
        assert apa_percent(network, "CME", "NY4") == 30

    def test_disconnected_network_scores_zero(self):
        network = _network()
        network.fiber_tails = network.fiber_tails[:1]
        network.__dict__.pop("graph", None)
        assert alternate_path_availability(network, "CME", "NY4") == 0.0

    def test_over_bound_network_scores_zero_even_with_bypasses(self):
        # A network whose intact latency exceeds 1.05x the geodesic bound
        # scores 0 regardless of redundancy (Table 1's slow networks).
        network = _network(n_links=6, bypassed=tuple(range(6)))
        bound = latency_bound_s(network, "CME", "NY4", slack=1.0000001)
        assert alternate_path_availability(
            network, "CME", "NY4", slack=1.0000001
        ) == 0.0

    def test_slack_monotonicity(self):
        network = _network(n_links=10, bypassed=(2, 5))
        loose = alternate_path_availability(network, "CME", "NY4", slack=1.10)
        tight = alternate_path_availability(network, "CME", "NY4", slack=1.02)
        assert loose >= tight

    def test_network_scope_counts_all_links(self):
        # Scope "network" also counts the bypass links themselves (each is
        # removable: the direct link remains), so the fraction rises.
        network = _network(n_links=10, bypassed=(2,))
        route_scope = alternate_path_availability(network, "CME", "NY4", scope="route")
        network_scope = alternate_path_availability(
            network, "CME", "NY4", scope="network"
        )
        assert network_scope > route_scope

    def test_rejects_unknown_scope(self):
        with pytest.raises(ValueError):
            alternate_path_availability(_network(), "CME", "NY4", scope="bogus")

    def test_rejects_nonpositive_slack(self):
        with pytest.raises(ValueError):
            latency_bound_s(_network(), "CME", "NY4", slack=0.0)

    def test_bound_is_slack_times_geodesic(self):
        network = _network()
        bound = latency_bound_s(network, "CME", "NY4", slack=1.05)
        geodesic = geodesic_distance(WEST.point, EAST.point)
        assert bound == pytest.approx(1.05 * geodesic / 299_792_458.0)
