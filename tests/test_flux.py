"""Tests for the race-over-time analysis (§3's "rankings in flux")."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.analysis.flux import race_history


@pytest.fixture(scope="module")
def history(scenario):
    return race_history(scenario)


class TestRaceHistory:
    def test_leadership_changes_hands(self, history):
        # NTC leads early, WH mid-decade, NLN from 2018: at least two
        # changes — the race is in flux.
        assert history.leadership_changes >= 2

    def test_final_leader_is_nln(self, history):
        assert history.snapshots[-1].leader == "New Line Networks"

    def test_early_leader_is_ntc(self, history):
        by_date = dict(history.leaders)
        assert by_date[dt.date(2013, 1, 1)] == "National Tower Company"

    def test_bound_never_reached(self, history):
        # §4: the minimum achievable latency has not been reached.
        for _, gap in history.gap_to_bound_us():
            if gap is not None:
                assert gap > 0.0

    def test_gap_shrinks_monotonically(self, history):
        gaps = [gap for _, gap in history.gap_to_bound_us() if gap is not None]
        assert all(a >= b - 1e-9 for a, b in zip(gaps, gaps[1:]))
        # From ~46 µs over the bound in 2013 to ~5.6 µs in 2020.
        assert gaps[0] > 40.0
        assert gaps[-1] == pytest.approx(5.65, abs=0.3)

    def test_rank_trajectory_of_wh(self, history):
        trajectory = dict(history.rank_of("Webline Holdings"))
        # WH is never rank 1 after NLN connects, but always present.
        assert all(rank is not None for rank in trajectory.values())
        assert trajectory[dt.date(2020, 4, 1)] == 5

    def test_rank_trajectory_of_dead_network(self, history):
        trajectory = dict(history.rank_of("National Tower Company"))
        assert trajectory[dt.date(2016, 1, 1)] is not None
        assert trajectory[dt.date(2019, 1, 1)] is None

    def test_custom_licensee_subset(self, scenario):
        history = race_history(
            scenario, licensees=["New Line Networks", "Webline Holdings"]
        )
        assert history.snapshots[-1].order == (
            "New Line Networks",
            "Webline Holdings",
        )
