"""Tests for the ULS license data model."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.geodesy import GeoPoint
from repro.uls.records import (
    License,
    MicrowavePath,
    TowerLocation,
    active_licenses,
    format_date,
    licenses_by_licensee,
    parse_date,
    total_filings,
)
from tests.conftest import make_license


class TestTowerLocation:
    def test_location_numbers_start_at_one(self):
        with pytest.raises(ValueError):
            TowerLocation(0, GeoPoint(0.0, 0.0))

    def test_rejects_negative_height(self):
        with pytest.raises(ValueError):
            TowerLocation(1, GeoPoint(0.0, 0.0), structure_height_m=-5.0)

    def test_antenna_height_amsl(self):
        loc = TowerLocation(1, GeoPoint(0.0, 0.0), 200.0, 110.0)
        assert loc.antenna_height_amsl_m == 310.0


class TestMicrowavePath:
    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            MicrowavePath(1, 1, 1)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            MicrowavePath(1, 1, 2, (0.0,))

    def test_rejects_zero_path_number(self):
        with pytest.raises(ValueError):
            MicrowavePath(0, 1, 2)


class TestLicenseValidation:
    def test_path_must_reference_locations(self):
        with pytest.raises(ValueError, match="undefined"):
            License(
                license_id="L1",
                callsign="W1",
                licensee_name="X",
                locations={1: TowerLocation(1, GeoPoint(0.0, 0.0))},
                paths=[MicrowavePath(1, 1, 2)],
            )

    def test_requires_nonempty_ids(self):
        with pytest.raises(ValueError):
            License(license_id="", callsign="W", licensee_name="X")
        with pytest.raises(ValueError):
            License(license_id="L", callsign="W", licensee_name="")


class TestIsActive:
    def test_pending_license_inactive(self):
        lic = make_license(grant=None)
        assert not lic.is_active(dt.date(2020, 1, 1))

    def test_active_between_grant_and_cancellation(self):
        lic = make_license(
            grant=dt.date(2015, 3, 1), cancellation=dt.date(2018, 6, 1)
        )
        assert not lic.is_active(dt.date(2015, 2, 28))
        assert lic.is_active(dt.date(2015, 3, 1))  # grant day counts
        assert lic.is_active(dt.date(2018, 5, 31))
        assert not lic.is_active(dt.date(2018, 6, 1))  # cancel day does not
        assert not lic.is_active(dt.date(2019, 1, 1))

    def test_termination_also_deactivates(self):
        lic = make_license(termination=dt.date(2017, 1, 1))
        assert lic.is_active(dt.date(2016, 12, 31))
        assert not lic.is_active(dt.date(2017, 1, 1))

    def test_expiration_deactivates(self):
        lic = make_license(grant=dt.date(2010, 1, 1))
        assert lic.is_active(dt.date(2015, 1, 1))
        assert not lic.is_active(dt.date(2030, 1, 1))

    def test_active_filter_helper(self):
        lic1 = make_license("L1", grant=dt.date(2015, 1, 1))
        lic2 = make_license("L2", grant=dt.date(2019, 1, 1))
        active = active_licenses([lic1, lic2], dt.date(2016, 1, 1))
        assert [lic.license_id for lic in active] == ["L1"]


class TestGeometryHelpers:
    def test_path_length_plausible(self):
        lic = make_license(points=((41.75, -88.18), (41.75, -87.58)))
        (length,) = [lic.path_length_m(path) for path in lic.paths]
        # 0.6 degrees of longitude at 41.75N is ~49.8 km.
        assert length == pytest.approx(49_800.0, rel=0.01)

    def test_iter_links_yields_endpoint_objects(self):
        lic = make_license(points=((41.0, -88.0), (41.1, -87.8), (41.2, -87.6)))
        links = list(lic.iter_links())
        assert len(links) == 2
        tx, rx, path = links[0]
        assert tx.location_number == path.tx_location_number

    def test_all_frequencies_sorted(self):
        lic = make_license(frequencies=(11485.0, 10995.0))
        assert lic.all_frequencies_mhz == (10995.0, 11485.0)


class TestDates:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("2020-04-01", dt.date(2020, 4, 1)),
            ("04/01/2020", dt.date(2020, 4, 1)),
            ("", None),
            (None, None),
            ("  ", None),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_date(text) == expected

    def test_format_styles(self):
        date = dt.date(2020, 4, 1)
        assert format_date(date) == "2020-04-01"
        assert format_date(date, "us") == "04/01/2020"
        assert format_date(None) == ""
        with pytest.raises(ValueError):
            format_date(date, "eu")


def test_grouping_and_counts():
    lics = [
        make_license("L1", licensee="A"),
        make_license("L2", licensee="B"),
        make_license("L3", licensee="A"),
    ]
    grouped = licenses_by_licensee(lics)
    assert sorted(grouped) == ["A", "B"]
    assert total_filings(grouped["A"]) == 2
