"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "New Line Networks" in out
        assert "3.96171" in out or "3.96172" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "CME-NASDAQ" in out
        assert "Webline Holdings" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Alternate path availability" in out
        assert "54%" in out

    def test_funnel(self, capsys):
        assert main(["funnel"]) == 0
        out = capsys.readouterr().out
        assert "candidate licensees: 57" in out
        assert "connected CME-NY4: 9" in out

    def test_timeline(self, capsys):
        assert main(["timeline"]) == 0
        out = capsys.readouterr().out
        assert "Fig 1" in out and "Fig 2" in out
        assert "National Tower Company" in out

    def test_timeline_with_custom_date_flag_parses(self, capsys):
        assert main(["table1", "--date", "2018-01-01"]) == 0
        out = capsys.readouterr().out
        assert "New Line Networks" in out
        # Pierce Broadband has no network in 2018.
        assert "Pierce Broadband" not in out

    def test_export(self, capsys, tmp_path):
        assert main(
            ["export", "New Line Networks", "--output-dir", str(tmp_path)]
        ) == 0
        written = {path.suffix for path in tmp_path.iterdir()}
        assert written == {".yaml", ".geojson", ".svg"}

    def test_export_unknown_licensee(self, capsys):
        assert main(["export", "No Such Net"]) == 2
        assert "unknown licensee" in capsys.readouterr().err

    def test_leo(self, capsys):
        assert main(["leo"]) == 0
        out = capsys.readouterr().out
        assert "LEO 550" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestExtensionCommands:
    def test_entities(self, capsys):
        assert main(["entities"]) == 0
        out = capsys.readouterr().out
        assert "tradewavegroup" in out
        assert "Midwest Relay Partners" in out

    def test_weather(self, capsys):
        assert main(["weather", "--storms", "6"]) == 0
        out = capsys.readouterr().out
        assert "storm p90" in out
        assert "Webline Holdings" in out

    def test_stability(self, capsys):
        assert main(["stability"]) == 0
        out = capsys.readouterr().out
        assert "Jefferson Microwave" in out
        assert "1.4" in out

    def test_design(self, capsys):
        assert main(["design", "--trunk-budget", "40"]) == 0
        out = capsys.readouterr().out
        assert "Designed CME-NY4 network" in out
        assert "APA" in out

    def test_design_infeasible(self, capsys):
        assert main(["design", "--trunk-budget", "6"]) == 2
        assert "infeasible" in capsys.readouterr().err

    def test_diff(self, capsys):
        assert main(["diff", "2015-01-01", "2016-01-01"]) == 0
        out = capsys.readouterr().out
        assert "newly connected: New Line Networks" in out
        assert "grants" in out
