"""Tests for the four ULS search interfaces."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.geodesy import GeoPoint, geodesic_destination
from repro.uls.database import UlsDatabase
from repro.uls.search import UlsSearchService
from tests.conftest import make_license

CME = GeoPoint(41.7580, -88.1801)


@pytest.fixture()
def service():
    near = geodesic_destination(CME, 45.0, 3_000.0)
    far_tower = geodesic_destination(CME, 90.0, 40_000.0)
    remote = geodesic_destination(CME, 90.0, 500_000.0)
    licenses = [
        make_license(
            "MG1",
            licensee="HFT Alpha",
            points=((near.latitude, near.longitude), (far_tower.latitude, far_tower.longitude)),
            grant=dt.date(2015, 1, 1),
        ),
        make_license(
            "MG2",
            licensee="HFT Alpha",
            points=((far_tower.latitude, far_tower.longitude), (remote.latitude, remote.longitude)),
            grant=dt.date(2015, 1, 1),
        ),
        make_license(
            "MG3",
            licensee="Local Utility",
            points=((near.latitude, near.longitude), (far_tower.latitude, far_tower.longitude)),
            grant=dt.date(2015, 1, 1),
            cancellation=dt.date(2018, 1, 1),
        ),
        make_license(
            "TV1",
            licensee="Broadcaster",
            points=((near.latitude, near.longitude), (far_tower.latitude, far_tower.longitude)),
            radio_service="TS",
            station_class="FXO",
        ),
        make_license(
            "FB1",
            licensee="Mobile Base",
            points=((near.latitude, near.longitude), (far_tower.latitude, far_tower.longitude)),
            radio_service="MG",
            station_class="FB",
        ),
    ]
    return UlsSearchService(UlsDatabase(licenses))


class TestGeographicSearch:
    def test_finds_licenses_with_endpoint_in_radius(self, service):
        rows = service.geographic_search(CME, 10_000.0)
        ids = {row.license_id for row in rows}
        assert ids == {"MG1", "MG3", "TV1", "FB1"}

    def test_active_on_excludes_cancelled(self, service):
        rows = service.geographic_search(CME, 10_000.0, active_on=dt.date(2019, 1, 1))
        assert "MG3" not in {row.license_id for row in rows}

    def test_larger_radius_reaches_more(self, service):
        rows = service.geographic_search(CME, 60_000.0)
        assert {row.license_id for row in rows} >= {"MG1", "MG2", "MG3"}


class TestSiteSearch:
    def test_filters_service_and_class(self, service):
        rows = service.site_search("MG", "FXO")
        assert {row.license_id for row in rows} == {"MG1", "MG2", "MG3"}

    def test_within_composes_with_geographic(self, service):
        geo = service.geographic_search(CME, 10_000.0)
        rows = service.site_search("MG", "FXO", within=geo)
        assert {row.license_id for row in rows} == {"MG1", "MG3"}


class TestNameAndDetail:
    def test_name_search(self, service):
        rows = service.name_search("HFT Alpha")
        assert [row.license_id for row in rows] == ["MG1", "MG2"]

    def test_detail_returns_full_record(self, service):
        lic = service.license_detail("MG2")
        assert lic.licensee_name == "HFT Alpha"
        assert len(lic.paths) == 1


class TestFunnelHelpers:
    def test_candidate_licensees(self, service):
        names = service.candidate_licensees(CME)
        assert names == ["HFT Alpha", "Local Utility"]

    def test_filing_counts(self, service):
        counts = service.filing_counts(["HFT Alpha", "Local Utility"])
        assert counts == {"HFT Alpha": 2, "Local Utility": 1}
