"""End-to-end obs tests: the instrumented pipeline emits the expected
span tree and cache counters, through the library API and the CLI."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro import obs
from repro.analysis.funnel import run_scraping_funnel
from repro.cli import main
from repro.core.engine import CorridorEngine


class TestFunnelTrace:
    def test_funnel_span_tree_and_counters(self, scenario):
        # A fresh engine: every snapshot misses, so the whole
        # reconstruction span tree appears regardless of test ordering.
        engine = CorridorEngine(scenario.database, scenario.corridor)
        with obs.capture() as cap:
            result = run_scraping_funnel(
                scenario.database,
                scenario.corridor,
                scenario.snapshot_date,
                engine=engine,
            )
        assert result.counts == (57, 29, 9)

        names = set(cap.sink.names())
        # One span per instrumented layer, funnel root included.
        for expected in (
            "analysis.funnel",
            "analysis.funnel.search",
            "analysis.funnel.shortlist",
            "analysis.funnel.connect",
            "engine.snapshot",
            "engine.snapshot.build",
            "geodesy.memo",
            "core.stitch",
            "core.fiber",
            "uls.scraper.search",
            "uls.scraper.detail",
        ):
            assert expected in names, expected

        # The tree nests: funnel root at depth 0, stages at depth 1,
        # engine spans strictly deeper.
        by_name = {}
        for record in cap.spans:
            by_name.setdefault(record.name, []).append(record)
        (root,) = by_name["analysis.funnel"]
        assert root.depth == 0 and root.parent_id is None
        for stage in ("search", "shortlist", "connect"):
            (span,) = by_name[f"analysis.funnel.{stage}"]
            assert span.parent_id == root.span_id
        assert all(r.depth >= 2 for r in by_name["engine.snapshot"])
        assert all(r.depth > 2 for r in by_name["core.stitch"])

        counters = cap.counters()
        # 29 shortlisted licensees are reconstructed from scraped records.
        hits = counters.get("engine.snapshot.hit", 0)
        misses = counters.get("engine.snapshot.miss", 0)
        assert hits + misses == 29
        # Every reconstruction leans on the geodesic memo.
        assert counters["geodesy.memo.hit"] + counters["geodesy.memo.miss"] > 0
        assert counters["uls.scraper.page.detail"] > 0

    def test_rerun_hits_snapshot_cache_and_results_unchanged(self, scenario):
        engine = scenario.engine()
        plain = run_scraping_funnel(
            scenario.database,
            scenario.corridor,
            scenario.snapshot_date,
            engine=engine,
        )
        with obs.capture() as cap:
            observed = run_scraping_funnel(
                scenario.database,
                scenario.corridor,
                scenario.snapshot_date,
                engine=engine,
            )
        # Observation never changes results.
        assert observed == plain
        counters = cap.counters()
        # Second run over a warm engine: every snapshot is a cache hit,
        # so no reconstruction (and no memo traffic) happens at all.
        assert counters["engine.snapshot.hit"] == 29
        assert counters.get("engine.snapshot.miss", 0) == 0
        assert "engine.snapshot.build" not in set(cap.sink.names())


class TestCliTrace:
    def test_funnel_trace_and_metrics_flags(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        assert main(["funnel", "--trace", str(trace_path), "--metrics"]) == 0
        captured = capsys.readouterr()
        assert "connected CME-NY4: 9" in captured.out

        spans = obs.read_trace(trace_path)  # validates header + line types
        names = {span["name"] for span in spans}
        assert "engine.snapshot" in names
        assert "analysis.funnel" in names
        # Reconstruction spans appear iff any snapshot actually missed —
        # earlier tests may have warmed the process-shared engine.
        if "engine.snapshot.build" in names:
            assert "geodesy.memo" in names

        # Metrics summary lands on stderr with the cache-hit counters.
        assert "metrics summary:" in captured.err
        assert "engine.snapshot" in captured.err
        assert f"wrote span trace to {trace_path}" in captured.err

    def test_cold_process_funnel_trace(self, tmp_path):
        """The acceptance run: a fresh interpreter, so every cache is cold
        and the full reconstruction span tree lands in the trace."""
        trace_path = tmp_path / "trace.jsonl"
        result = subprocess.run(
            [
                sys.executable, "-m", "repro",
                "funnel", "--trace", str(trace_path), "--metrics",
            ],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=Path(__file__).resolve().parents[1],
        )
        assert result.returncode == 0, result.stderr
        names = {span["name"] for span in obs.read_trace(trace_path)}
        assert "engine.snapshot" in names
        assert "geodesy.memo" in names
        assert "core.stitch" in names
        assert "metrics summary:" in result.stderr
        assert "engine.snapshot.miss" in result.stderr
        assert "geodesy.memo.hit" in result.stderr

    def test_metrics_flag_alone(self, capsys):
        assert main(["table1", "--metrics"]) == 0
        captured = capsys.readouterr()
        assert "New Line Networks" in captured.out
        assert "metrics summary:" in captured.err

    def test_obs_disabled_after_cli_run(self, tmp_path, capsys):
        main(["table3", "--trace", str(tmp_path / "t.jsonl")])
        assert not obs.is_enabled()

    def test_no_flags_means_no_session(self, capsys):
        assert main(["table3"]) == 0
        captured = capsys.readouterr()
        assert "metrics summary:" not in captured.err
        assert not obs.is_enabled()
