"""The scenario registry: references, resolution, and the multi-corridor
round-trip contract.

The load-bearing property: *every* registered scenario (and randomized
``synthetic(...)`` instances) must round-trip through funnel → rankings →
timeline with byte-identical output whether computed serially, fanned out
over a grid session, or store-warmed from a prior run's checkpoint.  The
paper scenario additionally pins its golden Table 1 numbers so the
registry refactor can never drift the default output.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.figures import fig1_latency_evolution
from repro.analysis.funnel import run_scraping_funnel
from repro.core.engine import CorridorEngine
from repro.core.timeline import yearly_snapshot_dates
from repro.metrics.rankings import rank_connected_networks
from repro.parallel import GridSession
from repro.scenarios import (
    ScenarioEntry,
    ScenarioParamError,
    ScenarioRef,
    UnknownScenarioError,
    parse_scenario_ref,
    register_scenario,
    registered_scenarios,
    resolve_scenario,
    scenario_names,
    synthetic_scenario,
)
from repro.serve.payloads import render_payload, rankings_payload
from repro.store import CacheStore
from repro.synth.scenario import (
    europe2020_scenario,
    paper2020_scenario,
    tokyo_singapore_scenario,
)


class TestScenarioRef:
    def test_bare_name(self):
        ref = parse_scenario_ref("paper2020")
        assert ref == ScenarioRef("paper2020")
        assert ref.canonical == "paper2020"

    def test_params_sorted_into_canonical_form(self):
        a = parse_scenario_ref("synthetic:seed=7,links=20")
        b = parse_scenario_ref("synthetic:links=20,seed=7")
        assert a == b
        assert hash(a) == hash(b)
        assert a.canonical == "synthetic:links=20,seed=7"

    def test_whitespace_stripped(self):
        ref = parse_scenario_ref("  synthetic: seed = 7 , links = 20 ")
        assert ref.params == (("links", "20"), ("seed", "7"))

    @pytest.mark.parametrize(
        "text", ["synthetic:seed", "synthetic:=7", "synthetic:seed=", ""]
    )
    def test_malformed_reference_raises(self, text):
        with pytest.raises(ScenarioParamError):
            parse_scenario_ref(text)

    def test_duplicate_keys_raise(self):
        with pytest.raises(ScenarioParamError, match="duplicate"):
            parse_scenario_ref("synthetic:seed=1,seed=2")

    def test_ref_passthrough(self):
        ref = ScenarioRef("europe2020")
        assert parse_scenario_ref(ref) is ref


class TestRegistry:
    def test_builtins_registered(self):
        assert scenario_names() == (
            "europe2020",
            "paper2020",
            "synthetic",
            "tokyo-singapore",
        )

    def test_concrete_only_excludes_the_generator(self):
        assert scenario_names(concrete_only=True) == (
            "europe2020",
            "paper2020",
            "tokyo-singapore",
        )
        by_name = {entry.name: entry for entry in registered_scenarios()}
        assert not by_name["synthetic"].concrete
        assert by_name["paper2020"].concrete

    def test_resolution_shares_the_builder_singletons(self):
        # The whole engine-sharing story rests on this: the registry
        # answers with the *same* cached object the direct builders (and
        # the test fixtures) use, so there is exactly one warm default
        # engine per scenario per process.
        assert resolve_scenario("paper2020") is paper2020_scenario()
        assert resolve_scenario("europe2020") is europe2020_scenario()
        assert resolve_scenario("tokyo-singapore") is tokyo_singapore_scenario()

    def test_synthetic_spellings_share_one_scenario(self):
        a = resolve_scenario("synthetic:seed=11,networks=1,links=12")
        b = resolve_scenario("synthetic:links=12,seed=11,networks=1")
        assert a is b

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(UnknownScenarioError) as excinfo:
            resolve_scenario("atlantis")
        assert "paper2020" in str(excinfo.value)
        assert "tokyo-singapore" in str(excinfo.value)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ScenarioParamError, match="does not accept"):
            resolve_scenario("synthetic:towers=5")

    def test_params_on_parameterless_scenario_rejected(self):
        with pytest.raises(ScenarioParamError, match="does not accept"):
            resolve_scenario("paper2020:seed=1")

    def test_bad_parameter_value_rejected(self):
        with pytest.raises(ScenarioParamError, match="bad value"):
            resolve_scenario("synthetic:seed=many")

    def test_register_replaces_same_name(self):
        entry = ScenarioEntry(
            name="_test_only",
            summary="unit-test entry",
            builder=paper2020_scenario,
        )
        try:
            register_scenario(entry)
            assert resolve_scenario("_test_only") is paper2020_scenario()
            replacement = ScenarioEntry(
                name="_test_only",
                summary="replacement",
                builder=europe2020_scenario,
            )
            register_scenario(replacement)
            assert resolve_scenario("_test_only") is europe2020_scenario()
        finally:
            from repro.scenarios import registry

            with registry._LOCK:
                registry._REGISTRY.pop("_test_only", None)


class TestSyntheticScenario:
    def test_determinism_same_seed_same_world(self):
        a = synthetic_scenario(seed=5, networks=2, links=14)
        b = synthetic_scenario(seed=5, networks=2, links=14)
        assert a is b  # builder-level memoisation
        assert a.name == "synthetic-s5-n2-l14"

    def test_networks_are_connected_and_ranked(self):
        scenario = resolve_scenario("synthetic:seed=9,networks=3,links=16")
        rankings = rank_connected_networks(
            scenario.database,
            scenario.corridor,
            scenario.snapshot_date,
            engine=scenario.engine(),
        )
        assert [r.licensee for r in rankings] == [
            "Synthetic Net 01",
            "Synthetic Net 02",
            "Synthetic Net 03",
        ]
        # Calibration targets are strictly increasing with index.
        latencies = [r.latency_ms for r in rankings]
        assert latencies == sorted(latencies)

    def test_decoys_are_filtered_by_the_funnel(self):
        scenario = resolve_scenario(
            "synthetic:seed=13,networks=2,links=14,decoys=8"
        )
        result = run_scraping_funnel(
            scenario.database,
            scenario.corridor,
            scenario.snapshot_date,
            engine=scenario.engine(),
        )
        candidates, shortlisted, connected = result.counts
        assert candidates > connected  # decoys showed up...
        assert connected == 2  # ...but never survive the funnel

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"networks": 0},
            {"networks": 65},
            {"links": 11},
            {"links": 401},
            {"eras": 0},
            {"eras": 7},
            {"decoys": -1},
            {"decoys": 201},
            # Corridor below the 200 km calibration floor.
            {"west_lat": 32.7, "west_lon": -96.8,
             "east_lat": 32.9, "east_lon": -96.5},
        ],
    )
    def test_out_of_range_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            synthetic_scenario(seed=1, **kwargs)


class TestPaperGoldenPins:
    """The default scenario's output is pinned byte-for-byte forever."""

    def test_table1_golden_numbers(self, scenario, engine):
        rankings = rank_connected_networks(
            scenario.database,
            scenario.corridor,
            scenario.snapshot_date,
            engine=engine,
        )
        top = rankings[0]
        assert top.licensee == "New Line Networks"
        assert f"{top.latency_ms:.5f}" == "3.96172"
        assert top.tower_count == 25
        assert len(rankings) == 9

    def test_cli_table1_default_title_is_unchanged(self, capsys):
        from repro.cli import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("Connected networks, CME-NY4\n")
        assert "New Line Networks" in out

    def test_default_resolution_is_the_conftest_scenario(self, scenario):
        assert resolve_scenario("paper2020") is scenario


class TestEuropeTokyoGoldenPins:
    def test_europe_cli_end_to_end(self, capsys):
        from repro.cli import main

        assert main(["table1", "--scenario", "europe2020"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("Connected networks, LD4-FR2\n")
        assert "Channel Wave Networks" in out
        assert "2.24600" in out

    def test_tokyo_rankings_golden(self):
        scenario = resolve_scenario("tokyo-singapore")
        rankings = rank_connected_networks(
            scenario.database,
            scenario.corridor,
            scenario.snapshot_date,
            engine=scenario.engine(),
        )
        assert [r.licensee for r in rankings] == [
            "Pacific Rim Relay",
            "Straits Microwave",
            "Archipelago Wave",
        ]
        assert f"{rankings[0].latency_ms:.5f}" == "17.77800"

    def test_unknown_scenario_exits_2(self, capsys):
        from repro.cli import main

        assert main(["table1", "--scenario", "atlantis"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


def _roundtrip_bytes(scenario, jobs: int = 1, engine=None) -> tuple:
    """(funnel counts, canonical rankings bytes, timeline latencies)."""
    engine = engine if engine is not None else scenario.engine()
    funnel = run_scraping_funnel(
        scenario.database,
        scenario.corridor,
        scenario.snapshot_date,
        engine=engine,
        jobs=jobs,
    )
    rankings = render_payload(
        rankings_payload(scenario, engine, scenario.snapshot_date)
    )
    dates = yearly_snapshot_dates()
    if jobs == 1:
        series = fig1_latency_evolution(scenario, dates=dates)
    else:
        with GridSession(
            engine, jobs, backend="inline", scenario=scenario.name
        ) as session:
            series = fig1_latency_evolution(
                scenario, dates=dates, session=session
            )
    timeline = {
        name: tuple(point.latency_ms for point in points)
        for name, points in series.items()
    }
    return funnel.counts, rankings, timeline


@pytest.mark.parametrize("name", ["europe2020", "tokyo-singapore"])
def test_registered_scenarios_roundtrip_serial_vs_grid(name):
    scenario = resolve_scenario(name)
    assert _roundtrip_bytes(scenario) == _roundtrip_bytes(scenario, jobs=4)


def test_paper_roundtrip_serial_vs_grid(scenario):
    assert _roundtrip_bytes(scenario) == _roundtrip_bytes(scenario, jobs=4)


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=0, max_value=49),
    networks=st.integers(min_value=1, max_value=3),
    links=st.integers(min_value=12, max_value=18),
    decoys=st.integers(min_value=0, max_value=6),
)
def test_synthetic_roundtrip_serial_grid_and_store(
    seed, networks, links, decoys
):
    """Randomized synthetic scenarios hold the full determinism contract:
    serial == fanned-out == store-warmed, byte for byte."""
    ref = (
        f"synthetic:seed={seed},networks={networks}"
        f",links={links},decoys={decoys}"
    )
    scenario = resolve_scenario(ref)
    serial = _roundtrip_bytes(scenario)
    assert serial == _roundtrip_bytes(scenario, jobs=4)

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp)
        cold = CorridorEngine(
            scenario.database,
            scenario.corridor,
            store=CacheStore(store_dir),
        )
        assert serial == _roundtrip_bytes(scenario, engine=cold)
        cold.checkpoint()
        warmed = CorridorEngine(
            scenario.database,
            scenario.corridor,
            store=CacheStore(store_dir),
        )
        assert serial == _roundtrip_bytes(scenario, engine=warmed)
        # The warm engine really loaded the checkpoint: the snapshots the
        # cold run computed are cache hits, not recomputations.
        assert warmed.stats.snapshot.misses == 0
