"""Tests for the portal simulator and the scraping client."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.geodesy import GeoPoint, geodesic_destination
from repro.uls.database import UlsDatabase
from repro.uls.portal import PageNotFoundError, UlsPortal
from repro.uls.scraper import ScrapeError, UlsScraper, _TableExtractor
from tests.conftest import make_license

CME = GeoPoint(41.7580, -88.1801)


@pytest.fixture()
def stack():
    near = geodesic_destination(CME, 45.0, 3_000.0)
    far = geodesic_destination(CME, 90.0, 40_000.0)
    licenses = [
        make_license(
            "L1",
            licensee="HFT Alpha & Co",
            points=((near.latitude, near.longitude), (far.latitude, far.longitude)),
            grant=dt.date(2015, 3, 1),
            cancellation=dt.date(2019, 9, 30),
            frequencies=(10995.0, 11485.0),
        ),
        make_license(
            "L2",
            licensee="HFT Alpha & Co",
            points=((far.latitude, far.longitude), (41.5, -86.9)),
            grant=dt.date(2016, 6, 1),
        ),
    ]
    db = UlsDatabase(licenses)
    portal = UlsPortal(db)
    return portal, UlsScraper(portal)


class TestPortal:
    def test_geographic_page_contains_rows(self, stack):
        portal, _ = stack
        html = portal.geographic_search_page(CME.latitude, CME.longitude, 10.0)
        assert "HFT Alpha &amp; Co" in html
        assert "L1" in html

    def test_detail_page_escapes_and_structures(self, stack):
        portal, _ = stack
        html = portal.license_detail_page("L1")
        assert 'id="dates"' in html and 'id="locations"' in html and 'id="paths"' in html
        assert "03/01/2015" in html  # US-format grant date
        assert "&amp;" in html  # entity escaping

    def test_missing_license_raises(self, stack):
        portal, _ = stack
        with pytest.raises(PageNotFoundError):
            portal.license_detail_page("NOPE")

    def test_request_counter(self, stack):
        portal, _ = stack
        start = portal.page_requests
        portal.name_search_page("HFT Alpha & Co")
        portal.license_detail_page("L1")
        assert portal.page_requests == start + 2


class TestScraper:
    def test_geographic_rows(self, stack):
        _, scraper = stack
        rows = scraper.geographic_search(CME.latitude, CME.longitude, 10.0)
        assert rows[0]["licensee_name"] == "HFT Alpha & Co"
        assert rows[0]["radio_service_code"] == "MG"

    def test_licenses_of(self, stack):
        _, scraper = stack
        assert scraper.licenses_of("HFT Alpha & Co") == ["L1", "L2"]

    def test_detail_roundtrip(self, stack):
        _, scraper = stack
        lic = scraper.license_detail("L1")
        assert lic.license_id == "L1"
        assert lic.licensee_name == "HFT Alpha & Co"
        assert lic.grant_date == dt.date(2015, 3, 1)
        assert lic.cancellation_date == dt.date(2019, 9, 30)
        assert lic.paths[0].frequencies_mhz == (10995.0, 11485.0)
        # Coordinates survive the DMS rendering within ~1 cm.
        original = make_license("X").locations  # not used; precision check below
        assert lic.locations[1].point.latitude == pytest.approx(
            geodesic_destination(CME, 45.0, 3_000.0).latitude, abs=1e-6
        )

    def test_detail_cache(self, stack):
        portal, scraper = stack
        scraper.license_detail("L1")
        pages_before = portal.page_requests
        scraper.license_detail("L1")
        assert portal.page_requests == pages_before
        assert scraper.stats.cache_hits == 1

    def test_scrape_licensee_reconstructs_all(self, stack):
        _, scraper = stack
        licenses = scraper.scrape_licensee("HFT Alpha & Co")
        assert [lic.license_id for lic in licenses] == ["L1", "L2"]

    def test_active_semantics_survive_scrape(self, stack):
        _, scraper = stack
        lic = scraper.license_detail("L1")
        assert lic.is_active(dt.date(2018, 1, 1))
        assert not lic.is_active(dt.date(2020, 1, 1))


class TestHtmlRobustness:
    def test_table_extractor_ignores_non_result_tables(self):
        html = (
            "<table><tr><td>noise</td></tr></table>"
            '<table class="results" id="dates"><tr><th>Event</th><th>Date</th></tr>'
            "<tr><td>Grant</td><td>01/02/2015</td></tr></table>"
        )
        extractor = _TableExtractor()
        extractor.feed(html)
        assert list(extractor.tables) == ["dates"]
        assert extractor.tables["dates"][1] == ["Grant", "01/02/2015"]

    def test_first_table_raises_when_absent(self):
        extractor = _TableExtractor()
        extractor.feed("<html><body><p>empty</p></body></html>")
        with pytest.raises(ScrapeError):
            extractor.first_table()

    def test_scraper_rejects_header_drift(self, stack):
        portal, scraper = stack
        real = portal.geographic_search_page

        def tampered(lat, lon, radius, active_on=None):
            return real(lat, lon, radius, active_on).replace("Call Sign", "Callsign")

        portal.geographic_search_page = tampered
        with pytest.raises(ScrapeError, match="header"):
            scraper.geographic_search(CME.latitude, CME.longitude, 10.0)
