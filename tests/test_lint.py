"""The lint subsystem's infrastructure: driver, pragmas, baseline,
reporters, configuration — and the meta-test that the repository itself
lints clean with the committed baseline."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    Finding,
    JSON_SCHEMA_VERSION,
    LintConfig,
    SYNTAX_RULE,
    instantiate,
    lint_file,
    lint_paths,
    load_baseline,
    load_config,
    registered_rules,
    render_json,
    render_text,
    write_baseline,
)
from repro.lint.config import LintConfigError, find_project_root
from repro.lint.pragmas import parse_pragmas

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_module(tmp_path: Path, source: str, name: str = "mod.py") -> Path:
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def run_lint(tmp_path: Path, source: str, **config_kwargs):
    path = write_module(tmp_path, source)
    config = LintConfig(root=tmp_path, **config_kwargs)
    return lint_file(path, instantiate(), config)


# ----------------------------------------------------------------------
# Registry and driver
# ----------------------------------------------------------------------

class TestRegistry:
    def test_all_expected_rules_registered(self):
        names = set(registered_rules())
        assert {
            "hash-seed",
            "unseeded-rng",
            "wall-clock",
            "cache-discipline",
            "float-eq",
            "mutable-default",
            "broad-except",
            "unit-suffix",
        } <= names

    def test_every_rule_has_description_and_interests(self):
        from repro.lint.registry import ProgramRule

        for rule_cls in registered_rules().values():
            assert rule_cls.description
            if issubclass(rule_cls, ProgramRule):
                # Program rules consume the whole-program analysis, not
                # per-node dispatch.
                assert rule_cls.interests == ()
            else:
                assert rule_cls.interests

    def test_unknown_rule_name_raises(self):
        with pytest.raises(KeyError):
            instantiate(["no-such-rule"])


class TestDriver:
    def test_clean_file_has_no_findings(self, tmp_path):
        assert run_lint(tmp_path, "x = 1\n") == []

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        findings = run_lint(tmp_path, "def broken(:\n    pass\n")
        assert len(findings) == 1
        assert findings[0].rule == SYNTAX_RULE
        assert findings[0].line == 1

    def test_findings_are_root_relative_and_sorted(self, tmp_path):
        source = """
            import random
            a = random.random()
            b = random.random()
        """
        findings = run_lint(tmp_path, source)
        assert [f.rule for f in findings] == ["unseeded-rng", "unseeded-rng"]
        assert findings[0].path == "mod.py"
        assert findings[0].line < findings[1].line

    def test_missing_path_raises(self, tmp_path):
        config = LintConfig(root=tmp_path)
        with pytest.raises(FileNotFoundError):
            lint_paths([tmp_path / "nope"], config=config)

    def test_directory_expansion_dedupes(self, tmp_path):
        write_module(tmp_path, "x = 1\n", name="a.py")
        write_module(tmp_path, "y = 2\n", name="b.py")
        config = LintConfig(root=tmp_path)
        result = lint_paths(
            [tmp_path, tmp_path / "a.py"], config=config, use_baseline=False
        )
        assert result.files == ["a.py", "b.py"]


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------

class TestPragmas:
    def test_same_line_pragma_suppresses(self, tmp_path):
        source = """
            import random
            a = random.random()  # lint: disable=unseeded-rng (test fixture)
        """
        assert run_lint(tmp_path, source) == []

    def test_comment_block_pragma_covers_next_code_line(self, tmp_path):
        source = """
            import random
            # lint: disable=unseeded-rng (justification spanning a block
            # of several comment lines before the offending statement)
            a = random.random()
        """
        assert run_lint(tmp_path, source) == []

    def test_pragma_only_suppresses_named_rule(self, tmp_path):
        source = """
            import random
            a = random.random()  # lint: disable=wall-clock (wrong rule)
        """
        findings = run_lint(tmp_path, source)
        assert [f.rule for f in findings] == ["unseeded-rng"]

    def test_disable_all(self, tmp_path):
        source = """
            import random
            a = random.random()  # lint: disable=all
        """
        assert run_lint(tmp_path, source) == []

    def test_pragma_in_string_literal_is_inert(self, tmp_path):
        source = '''
            import random
            note = "# lint: disable=unseeded-rng"
            a = random.random()
        '''
        findings = run_lint(tmp_path, source)
        assert [f.rule for f in findings] == ["unseeded-rng"]

    def test_multiple_rules_one_pragma(self):
        pragmas = parse_pragmas(
            "x = 1  # lint: disable=float-eq, unit-suffix extra words\n"
        )
        assert pragmas[1] == frozenset({"float-eq", "unit-suffix"})


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

class TestBaseline:
    def test_baselined_findings_do_not_fail(self, tmp_path):
        source = """
            import random
            a = random.random()
        """
        path = write_module(tmp_path, source)
        config = LintConfig(root=tmp_path)
        first = lint_paths([path], config=config, use_baseline=False)
        assert len(first.findings) == 1

        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, first.findings)
        second = lint_paths([path], config=config)
        assert second.ok
        assert len(second.baselined) == 1

    def test_new_finding_still_fails_with_baseline(self, tmp_path):
        path = write_module(tmp_path, "import random\na = random.random()\n")
        config = LintConfig(root=tmp_path)
        first = lint_paths([path], config=config, use_baseline=False)
        write_baseline(tmp_path / "lint-baseline.json", first.findings)

        path.write_text(
            "import random\na = random.random()\nb = random.choice([1])\n",
            encoding="utf-8",
        )
        result = lint_paths([path], config=config)
        assert not result.ok
        assert len(result.findings) == 1  # only the new one
        assert len(result.baselined) == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert len(load_baseline(tmp_path / "absent.json")) == 0

    def test_roundtrip(self, tmp_path):
        finding = Finding(
            path="src/x.py", line=3, column=1, rule="float-eq", message="m"
        )
        write_baseline(tmp_path / "b.json", [finding])
        loaded = load_baseline(tmp_path / "b.json")
        assert loaded.contains(finding)
        # Message text may be reworded without un-baselining.
        reworded = Finding(
            path="src/x.py", line=3, column=9, rule="float-eq", message="other"
        )
        assert loaded.contains(reworded)

    def test_bad_version_raises(self, tmp_path):
        (tmp_path / "b.json").write_text('{"version": 99, "findings": []}')
        from repro.lint.baseline import BaselineError

        with pytest.raises(BaselineError):
            load_baseline(tmp_path / "b.json")


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------

class TestReporters:
    def _result(self, tmp_path):
        path = write_module(
            tmp_path, "import random\na = random.random()\n"
        )
        config = LintConfig(root=tmp_path)
        return lint_paths([path], config=config, use_baseline=False)

    def test_text_report_has_location_and_summary(self, tmp_path):
        report = render_text(self._result(tmp_path))
        assert "mod.py:2:5: unseeded-rng:" in report
        assert report.endswith("(0 baselined, 0 pragma-suppressed)")

    def test_json_schema_is_stable(self, tmp_path):
        document = json.loads(render_json(self._result(tmp_path)))
        assert document["version"] == JSON_SCHEMA_VERSION
        assert set(document) == {"version", "findings", "baselined", "summary"}
        assert set(document["summary"]) == {
            "files", "rules", "findings", "baselined", "suppressed", "ok",
        }
        (finding,) = document["findings"]
        assert set(finding) == {"path", "line", "column", "rule", "message"}
        assert finding["path"] == "mod.py"
        assert document["summary"]["ok"] is False


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------

class TestConfig:
    def test_defaults_without_pyproject(self, tmp_path):
        config = load_config(root=tmp_path)
        assert config.baseline_path == "lint-baseline.json"
        assert config.enabled is None
        assert config.default_paths == ("src/repro",)

    def test_pyproject_overrides(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            textwrap.dedent(
                """
                [tool.repro.lint]
                enable = ["float-eq"]
                baseline = "lint/base.json"
                default_paths = ["pkg"]

                [tool.repro.lint.float-eq]
                paths = ["pkg/numeric/"]
                """
            )
        )
        config = load_config(root=tmp_path)
        assert config.enabled == ("float-eq",)
        assert config.baseline_path == "lint/base.json"
        assert config.float_eq_paths() == ("pkg/numeric/",)

    def test_bad_enable_raises(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint]\nenable = 'float-eq'\n"
        )
        with pytest.raises(LintConfigError):
            load_config(root=tmp_path)

    def test_unknown_scalar_key_raises(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint]\nbasline = 'typo.json'\n"
        )
        with pytest.raises(LintConfigError):
            load_config(root=tmp_path)

    def test_enabled_subset_only_runs_those_rules(self, tmp_path):
        source = """
            import random
            a = random.random()
            if 0.5 == a:
                pass
        """
        path = write_module(tmp_path, source)
        config = LintConfig(
            root=tmp_path,
            enabled=("float-eq",),
            rule_options={"float-eq": {"paths": ["mod.py"]}},
        )
        result = lint_paths([path], config=config, use_baseline=False)
        assert [f.rule for f in result.findings] == ["float-eq"]

    def test_find_project_root_walks_up(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        assert find_project_root(nested) == tmp_path


# ----------------------------------------------------------------------
# The repository itself
# ----------------------------------------------------------------------

class TestRepositoryLintsClean:
    def test_src_repro_lints_clean_with_committed_baseline(self):
        """The acceptance meta-test: the shipped tree has zero findings."""
        config = load_config(root=REPO_ROOT)
        result = lint_paths(config=config)
        assert result.findings == [], render_text(result)
        # The committed baseline carries no grandfathered debt.
        assert result.baselined == []

    def test_injected_violation_fails_cli(self, tmp_path):
        """Any rule violation in a scratch file exits non-zero with a
        file:line finding (the acceptance criterion, via the real CLI)."""
        scratch = tmp_path / "scratch.py"
        scratch.write_text(
            "import random\nseed = random.Random(hash('name'))\n",
            encoding="utf-8",
        )
        process = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(scratch)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert process.returncode == 1
        assert "hash-seed" in process.stdout
        assert "scratch.py:2:" in process.stdout

    def test_cli_lints_clean_tree_exit_zero(self):
        process = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "src/repro/lint"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert process.returncode == 0, process.stdout + process.stderr

    def test_cli_json_format(self):
        process = subprocess.run(
            [
                sys.executable, "-m", "repro", "lint", "--format", "json",
                "src/repro/lint",
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert process.returncode == 0
        document = json.loads(process.stdout)
        assert document["version"] == JSON_SCHEMA_VERSION
