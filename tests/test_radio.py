"""Tests for the microwave radio engineering substrate."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio.availability import (
    link_availability,
    link_is_up,
    rain_rate_to_kill_link_mm_h,
)
from repro.radio.budget import (
    LinkBudget,
    first_fresnel_radius_m,
    free_space_path_loss_db,
)
from repro.radio.itu import (
    effective_path_length_km,
    percent_time_for_attenuation,
    rain_attenuation_db,
    rain_exceedance_attenuation_db,
    specific_attenuation_db_per_km,
)

freq = st.floats(min_value=4.0, max_value=30.0)
rain = st.floats(min_value=0.1, max_value=200.0)


class TestSpecificAttenuation:
    def test_dry_air_is_lossless(self):
        assert specific_attenuation_db_per_km(11.0, 0.0) == 0.0

    def test_reference_magnitudes(self):
        # Standard engineering sanity values (P.838 at R=42 mm/h):
        # 6 GHz well under 1 dB/km; 23 GHz several dB/km.
        assert specific_attenuation_db_per_km(6.0, 42.0) < 0.5
        assert specific_attenuation_db_per_km(23.0, 42.0) > 3.0

    @given(freq, rain)
    @settings(max_examples=60, deadline=None)
    def test_increasing_in_rain(self, frequency, rate):
        low = specific_attenuation_db_per_km(frequency, rate)
        high = specific_attenuation_db_per_km(frequency, rate * 1.5)
        assert high > low > 0.0

    @given(rain, st.floats(min_value=4.0, max_value=24.0))
    @settings(max_examples=60, deadline=None)
    def test_increasing_in_frequency(self, rate, frequency):
        assert specific_attenuation_db_per_km(
            frequency * 1.2, rate
        ) > specific_attenuation_db_per_km(frequency, rate)

    def test_frequency_range_enforced(self):
        with pytest.raises(ValueError):
            specific_attenuation_db_per_km(2.0, 10.0)
        with pytest.raises(ValueError):
            specific_attenuation_db_per_km(40.0, 10.0)

    def test_table_interpolation_continuous(self):
        # Values at and just off a table row agree closely.
        at_row = specific_attenuation_db_per_km(8.0, 42.0)
        near_row = specific_attenuation_db_per_km(8.01, 42.0)
        assert near_row == pytest.approx(at_row, rel=0.02)


class TestEffectivePathLength:
    def test_short_paths_nearly_unchanged(self):
        assert effective_path_length_km(1.0, 42.0) == pytest.approx(1.0, rel=0.06)

    def test_long_paths_saturate(self):
        d0 = 35.0 * math.exp(-0.015 * 42.0)
        assert effective_path_length_km(1_000.0, 42.0) < d0 * 1.05

    def test_monotone_in_distance(self):
        assert effective_path_length_km(60.0, 42.0) > effective_path_length_km(30.0, 42.0)

    def test_rate_capped_at_100(self):
        assert effective_path_length_km(50.0, 150.0) == effective_path_length_km(
            50.0, 100.0
        )


class TestExceedance:
    def test_p001_identity(self):
        a = rain_exceedance_attenuation_db(11.0, 50.0, 42.0, 0.01)
        gamma = specific_attenuation_db_per_km(11.0, 42.0)
        assert a == pytest.approx(gamma * effective_path_length_km(50.0, 42.0))

    def test_rarer_exceedance_is_larger(self):
        rare = rain_exceedance_attenuation_db(11.0, 50.0, 42.0, 0.001)
        common = rain_exceedance_attenuation_db(11.0, 50.0, 42.0, 1.0)
        assert rare > common

    def test_percent_range_enforced(self):
        with pytest.raises(ValueError):
            rain_exceedance_attenuation_db(11.0, 50.0, 42.0, 2.0)

    def test_inverse_roundtrip(self):
        for percent in (0.003, 0.01, 0.1, 0.5):
            attenuation = rain_exceedance_attenuation_db(11.0, 50.0, 42.0, percent)
            recovered = percent_time_for_attenuation(11.0, 50.0, 42.0, attenuation)
            assert recovered == pytest.approx(percent, rel=0.02)

    def test_inverse_clamps(self):
        assert percent_time_for_attenuation(11.0, 50.0, 42.0, 0.0) == 1.0
        assert percent_time_for_attenuation(11.0, 50.0, 42.0, 1e9) == pytest.approx(
            0.001
        )


class TestBudget:
    def test_fspl_reference_value(self):
        # 11 GHz over 50 km: 92.45 + 20log10(11) + 20log10(50) = 147.3 dB.
        assert free_space_path_loss_db(11.0, 50.0) == pytest.approx(147.26, abs=0.05)

    def test_fspl_inverse_square_distance(self):
        assert free_space_path_loss_db(11.0, 100.0) - free_space_path_loss_db(
            11.0, 50.0
        ) == pytest.approx(20.0 * math.log10(2.0))

    def test_margin_decreases_with_distance_and_frequency(self):
        budget = LinkBudget()
        assert budget.fade_margin_db(6.0, 30.0) > budget.fade_margin_db(6.0, 60.0)
        assert budget.fade_margin_db(6.0, 30.0) > budget.fade_margin_db(18.0, 30.0)

    def test_max_hop_consistency(self):
        budget = LinkBudget()
        max_hop = budget.max_hop_km(11.0, required_margin_db=30.0)
        assert budget.fade_margin_db(11.0, max_hop) == pytest.approx(30.0, abs=0.01)

    def test_fspl_validation(self):
        with pytest.raises(ValueError):
            free_space_path_loss_db(0.0, 50.0)
        with pytest.raises(ValueError):
            free_space_path_loss_db(11.0, -1.0)

    def test_fresnel_radius(self):
        # Mid-path at 11 GHz over 50 km: 17.32*sqrt(25*25/(11*50)) = 18.5 m.
        radius = first_fresnel_radius_m(11.0, 25.0, 25.0)
        assert radius == pytest.approx(18.47, abs=0.1)
        # Largest at mid-path.
        assert radius > first_fresnel_radius_m(11.0, 5.0, 45.0)

    def test_fresnel_validation(self):
        with pytest.raises(ValueError):
            first_fresnel_radius_m(11.0, 0.0, 0.0)


class TestAvailability:
    def test_lower_frequency_more_available(self):
        assert link_availability(6.0, 50.0) >= link_availability(18.0, 50.0)

    def test_shorter_hop_more_available(self):
        assert link_availability(18.0, 20.0) > link_availability(18.0, 70.0)

    def test_clear_air_link_up(self):
        assert link_is_up(11.0, 50.0, rain_rate_mm_h=0.0)

    def test_severe_rain_kills_high_band(self):
        assert not link_is_up(23.0, 50.0, rain_rate_mm_h=60.0)
        assert link_is_up(6.0, 36.0, rain_rate_mm_h=60.0)

    def test_kill_rate_ordering(self):
        kill_6 = rain_rate_to_kill_link_mm_h(6.0, 50.0)
        kill_23 = rain_rate_to_kill_link_mm_h(23.0, 50.0)
        assert kill_23 < 20.0
        assert kill_6 == math.inf or kill_6 > 200.0

    def test_kill_rate_is_a_fixed_point(self):
        rate = rain_rate_to_kill_link_mm_h(11.0, 60.0)
        assert rate < math.inf
        assert link_is_up(11.0, 60.0, rate * 0.98)
        assert not link_is_up(11.0, 60.0, rate * 1.02)

    def test_overlong_hop_is_dead(self):
        # Beyond the clear-air maximum hop the margin is negative: with
        # the default budget that is ~1,640 km at 23 GHz.
        assert LinkBudget().fade_margin_db(23.0, 2_000.0) < 0.0
        assert link_availability(23.0, 2_000.0) == 0.0
        assert rain_rate_to_kill_link_mm_h(23.0, 2_000.0) == 0.0
