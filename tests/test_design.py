"""Tests for the §6 design pipeline (sites, trunk RCSP, redundancy,
evaluation)."""

from __future__ import annotations

import pytest

from repro.core.corridor import CME, NY4
from repro.design.evaluate import (
    NetworkDesign,
    corridor_endpoints,
    design_to_network,
    evaluate_design,
    latency_lower_bound_ms,
)
from repro.design.redundancy import augment_with_bypasses
from repro.design.sites import CandidateSite, generate_site_pool
from repro.design.trunk import DesignError, design_trunk
from repro.geodesy import geodesic_distance
from repro.geodesy.path import offset_point
from repro.radio.budget import LinkBudget

WEST_P, EAST_P = CME.point, NY4.point


@pytest.fixture(scope="module")
def pool():
    return generate_site_pool(WEST_P, EAST_P, n_sites=400, seed=3)


@pytest.fixture(scope="module")
def gateways():
    west = CandidateSite("gw-west", offset_point(WEST_P, EAST_P, 0.0008, 0.0), 3.0, 0.0)
    east = CandidateSite("gw-east", offset_point(WEST_P, EAST_P, 0.9992, 0.0), 3.0, 0.0)
    return west, east


@pytest.fixture(scope="module")
def trunk(pool, gateways):
    return design_trunk(pool, *gateways, budget=45.0)


class TestSitePool:
    def test_deterministic(self):
        a = generate_site_pool(WEST_P, EAST_P, n_sites=50, seed=1)
        b = generate_site_pool(WEST_P, EAST_P, n_sites=50, seed=1)
        assert [s.point.rounded() for s in a] == [s.point.rounded() for s in b]

    def test_sites_within_band(self):
        pool = generate_site_pool(WEST_P, EAST_P, n_sites=100, band_km=30.0, seed=2)
        assert all(site.offset_m <= 30_000.0 for site in pool)

    def test_prime_sites_cost_more(self):
        pool = generate_site_pool(WEST_P, EAST_P, n_sites=300, seed=2)
        near = [s.annual_cost for s in pool if s.offset_m < 5_000.0]
        far = [s.annual_cost for s in pool if s.offset_m > 25_000.0]
        assert sum(near) / len(near) > sum(far) / len(far)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_site_pool(WEST_P, EAST_P, n_sites=1)
        with pytest.raises(ValueError):
            generate_site_pool(WEST_P, EAST_P, band_km=0.0)
        with pytest.raises(ValueError):
            CandidateSite("x", WEST_P, annual_cost=0.0, offset_m=0.0)


class TestTrunkDesign:
    def test_respects_budget(self, trunk):
        assert trunk.total_cost <= 45.0

    def test_hops_within_link_budget(self, trunk):
        max_hop = LinkBudget().max_hop_km(11.0, 35.0)
        assert all(hop <= max_hop for hop in trunk.hop_lengths_km())

    def test_latency_near_geodesic(self, trunk):
        geodesic_km = geodesic_distance(WEST_P, EAST_P) / 1000.0
        stretch = trunk.microwave_length_m / 1000.0 / geodesic_km
        assert 1.0 < stretch < 1.01  # within 1% of the geodesic

    def test_more_budget_never_hurts(self, pool, gateways):
        poor = design_trunk(pool, *gateways, budget=36.0)
        rich = design_trunk(pool, *gateways, budget=60.0)
        assert rich.microwave_length_m < poor.microwave_length_m
        assert poor.total_cost <= 36.0

    def test_infeasible_budget_raises(self, pool, gateways):
        with pytest.raises(DesignError):
            design_trunk(pool, *gateways, budget=5.0)

    def test_band_too_high_for_corridor_raises(self, pool, gateways):
        # At 23 GHz with a 55 dB margin requirement, max hops are tiny;
        # a sparse pool cannot close the corridor.
        with pytest.raises(DesignError):
            design_trunk(
                pool, *gateways, budget=100.0, band_ghz=23.0, required_margin_db=55.0
            )

    def test_rejects_nonpositive_budget(self, pool, gateways):
        with pytest.raises(ValueError):
            design_trunk(pool, *gateways, budget=0.0)

    def test_gateways_are_endpoints(self, trunk, gateways):
        west, east = gateways
        assert trunk.sites[0].site_id == west.site_id
        assert trunk.sites[-1].site_id == east.site_id


class TestRedundancy:
    def test_bypasses_within_budget_and_distinct(self, trunk, pool):
        bypasses = augment_with_bypasses(trunk, pool, budget=12.0)
        assert sum(b.site.annual_cost for b in bypasses) <= 12.0
        ids = [b.site.site_id for b in bypasses]
        assert len(ids) == len(set(ids))
        trunk_ids = {site.site_id for site in trunk.sites}
        assert not trunk_ids & set(ids)

    def test_zero_budget_no_bypasses(self, trunk, pool):
        assert augment_with_bypasses(trunk, pool, budget=0.0) == []

    def test_negative_budget_rejected(self, trunk, pool):
        with pytest.raises(ValueError):
            augment_with_bypasses(trunk, pool, budget=-1.0)

    def test_more_budget_more_coverage(self, trunk, pool):
        few = augment_with_bypasses(trunk, pool, budget=5.0)
        many = augment_with_bypasses(trunk, pool, budget=25.0)
        covered_few = set().union(*(b.covered_links for b in few)) if few else set()
        covered_many = set().union(*(b.covered_links for b in many))
        assert covered_few <= covered_many
        assert len(covered_many) > len(covered_few)


class TestEvaluation:
    def test_report_fields(self, trunk, pool):
        west, east = corridor_endpoints(WEST_P, EAST_P)
        bypasses = tuple(augment_with_bypasses(trunk, pool, budget=15.0))
        design = NetworkDesign(trunk=trunk, bypasses=bypasses, west=west, east=east)
        report = evaluate_design(design, n_storms=5)
        assert report.latency_ms > latency_lower_bound_ms(WEST_P, EAST_P)
        assert 1.0 < report.stretch < 1.05
        assert 0.0 <= report.apa <= 1.0
        assert 0.0 <= report.storm_survival <= 1.0
        assert report.tower_count == trunk.hop_count + 1
        assert report.total_cost == pytest.approx(design.total_cost)

    def test_bypasses_raise_apa(self, trunk, pool):
        west, east = corridor_endpoints(WEST_P, EAST_P)
        bare = evaluate_design(
            NetworkDesign(trunk=trunk, bypasses=(), west=west, east=east),
            n_storms=1,
        )
        augmented = evaluate_design(
            NetworkDesign(
                trunk=trunk,
                bypasses=tuple(augment_with_bypasses(trunk, pool, budget=20.0)),
                west=west,
                east=east,
            ),
            n_storms=1,
        )
        assert bare.apa == 0.0
        assert augmented.apa > 0.5
        # The bypasses must not change the fair-weather shortest path.
        assert augmented.latency_ms == pytest.approx(bare.latency_ms, abs=1e-9)

    def test_low_band_alternates_survive_storms(self, trunk, pool):
        # §6 takeaway 3: 6 GHz alternates out-survive 11 GHz alternates.
        west, east = corridor_endpoints(WEST_P, EAST_P)
        low = tuple(augment_with_bypasses(trunk, pool, budget=20.0, band_ghz=6.0))
        high = tuple(
            augment_with_bypasses(trunk, pool, budget=20.0, band_ghz=11.0)
        )
        low_report = evaluate_design(
            NetworkDesign(trunk=trunk, bypasses=low, west=west, east=east),
            n_storms=15,
        )
        high_report = evaluate_design(
            NetworkDesign(trunk=trunk, bypasses=high, west=west, east=east),
            n_storms=15,
        )
        assert low_report.storm_survival >= high_report.storm_survival

    def test_designed_network_is_valid_hftnetwork(self, trunk, pool):
        west, east = corridor_endpoints(WEST_P, EAST_P)
        design = NetworkDesign(trunk=trunk, bypasses=(), west=west, east=east)
        network = design_to_network(design)
        assert network.is_connected("WEST", "EAST")
        assert network.licensee == "Designed Network"
