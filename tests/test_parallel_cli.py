"""End-to-end determinism: ``--jobs N`` must not change a byte of output.

Each command runs in a fresh subprocess (its own interpreter, its own
process-cached scenario) at ``--jobs 1`` and ``--jobs 4``; stdout must be
byte-identical.  ``scripts/check.sh`` enforces the same gate with
``diff`` so CI catches regressions even when this file is skipped.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run(command: str, jobs: int) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", command, "--jobs", str(jobs)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        timeout=600,
    )


@pytest.mark.parametrize("command", ["timeline", "table1", "funnel"])
def test_jobs_flag_output_is_byte_identical(command):
    serial = _run(command, 1)
    parallel = _run(command, 4)
    assert serial.returncode == 0, serial.stderr.decode()
    assert parallel.returncode == 0, parallel.stderr.decode()
    assert serial.stdout == parallel.stdout
    assert serial.stdout  # the command actually printed its report
