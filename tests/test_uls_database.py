"""Tests for the in-memory ULS database and its indices."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.geodesy import GeoPoint, geodesic_destination
from repro.uls.database import (
    DuplicateLicenseError,
    UlsDatabase,
    UnknownLicenseError,
)
from tests.conftest import make_license

CME = GeoPoint(41.7580, -88.1801)


class TestMutation:
    def test_add_and_len(self):
        db = UlsDatabase([make_license("L1"), make_license("L2")])
        assert len(db) == 2

    def test_duplicate_id_rejected(self):
        db = UlsDatabase([make_license("L1")])
        with pytest.raises(DuplicateLicenseError):
            db.add(make_license("L1"))

    def test_duplicate_callsign_rejected(self):
        db = UlsDatabase([make_license("L1")])
        clashing = make_license("L3")
        clashing.callsign = "WQL1"  # callsign normally derives from the id
        with pytest.raises(DuplicateLicenseError):
            db.add(clashing)

    def test_extend(self):
        db = UlsDatabase()
        db.extend([make_license("L1"), make_license("L2")])
        assert len(db) == 2


class TestLookup:
    def test_get_by_id_and_callsign(self):
        lic = make_license("L1")
        db = UlsDatabase([lic])
        assert db.get("L1") is lic
        assert db.get_by_callsign("WQL1") is lic

    def test_unknown_raises(self):
        db = UlsDatabase()
        with pytest.raises(UnknownLicenseError):
            db.get("nope")
        with pytest.raises(UnknownLicenseError):
            db.get_by_callsign("nope")

    def test_contains_and_iter(self):
        db = UlsDatabase([make_license("L1")])
        assert "L1" in db
        assert "L2" not in db
        assert [lic.license_id for lic in db] == ["L1"]

    def test_licensee_grouping(self):
        db = UlsDatabase(
            [
                make_license("L1", licensee="B Corp"),
                make_license("L2", licensee="A Corp"),
                make_license("L3", licensee="B Corp"),
            ]
        )
        assert db.licensee_names() == ["A Corp", "B Corp"]
        assert len(db.licenses_for("B Corp")) == 2
        assert db.licenses_for("missing") == []


class TestSpatial:
    def _db_with_ring(self, distances_km):
        licenses = []
        for index, distance in enumerate(distances_km):
            remote = geodesic_destination(CME, 40.0 * index, distance * 1000.0)
            far = geodesic_destination(remote, 90.0, 20_000.0)
            licenses.append(
                make_license(
                    f"L{index}",
                    licensee=f"Op{index}",
                    points=(
                        (remote.latitude, remote.longitude),
                        (far.latitude, far.longitude),
                    ),
                )
            )
        return UlsDatabase(licenses)

    def test_radius_search_inclusion(self):
        db = self._db_with_ring([1.0, 5.0, 9.9, 10.5, 50.0])
        hits = {lic.license_id for lic in db.licenses_within(CME, 10_000.0)}
        assert hits == {"L0", "L1", "L2"}

    def test_radius_search_deduplicates_license(self):
        # A license with both endpoints in range appears once.
        near = geodesic_destination(CME, 10.0, 2_000.0)
        lic = make_license(
            "L1",
            points=((CME.latitude, CME.longitude), (near.latitude, near.longitude)),
        )
        db = UlsDatabase([lic])
        assert len(db.licenses_within(CME, 10_000.0)) == 1

    def test_negative_radius_rejected(self):
        db = UlsDatabase()
        with pytest.raises(ValueError):
            db.licenses_within(CME, -1.0)

    def test_search_respects_grid_cell_boundaries(self):
        # A point just across a 0.5-degree grid boundary must still be found.
        boundary_point = GeoPoint(41.4999, -88.0001)
        neighbor = GeoPoint(41.5001, -87.9999)
        db = UlsDatabase(
            [
                make_license(
                    "L1",
                    points=(
                        (neighbor.latitude, neighbor.longitude),
                        (41.6, -87.5),
                    ),
                )
            ]
        )
        hits = db.licenses_within(boundary_point, 1_000.0)
        assert [lic.license_id for lic in hits] == ["L1"]


def test_active_on_filter():
    db = UlsDatabase(
        [
            make_license("L1", grant=dt.date(2015, 1, 1)),
            make_license("L2", grant=dt.date(2015, 1, 1), cancellation=dt.date(2016, 1, 1)),
        ]
    )
    active = db.active_on(dt.date(2017, 1, 1))
    assert [lic.license_id for lic in active] == ["L1"]
