"""The HTTP adapter: structured errors on the wire, survival, draining.

Everything here runs against a real listening socket (ephemeral port,
loopback only).  The session-scoped ``serve_server`` fixture carries the
read-only checks; tests that crash handlers or shut servers down build
their own throwaway server so the shared one stays clean.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.engine import CorridorEngine
from repro.serve import CorridorQueryService, CorridorServer, active_server
from repro.serve.server import run_server


def http_get(url: str) -> tuple[int, dict, dict]:
    """GET ``url`` -> (status, headers, parsed JSON body); never raises."""
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, dict(response.headers), json.load(response)
    except urllib.error.HTTPError as error:
        body = json.loads(error.read().decode("utf-8"))
        return error.code, dict(error.headers), body


class TestHttpResponses:
    def test_rankings_over_http(self, serve_server, serve_service):
        status, headers, body = http_get(serve_server.url + "/rankings")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert headers["Connection"] == "close"
        _, expected = serve_service.handle_url("/rankings")
        assert body == expected

    def test_content_length_matches_body(self, serve_server):
        with urllib.request.urlopen(serve_server.url + "/healthz") as response:
            raw = response.read()
            assert int(response.headers["Content-Length"]) == len(raw)

    @pytest.mark.parametrize(
        "path, status, code",
        [
            ("/nope", 404, "unknown-endpoint"),
            ("/rankings?date=not-a-date", 400, "bad-date"),
            ("/rankings?bogus=1", 400, "unknown-param"),
            ("/apa?licensee=Nobody", 404, "unknown-licensee"),
            ("/rankings?date=1999-01-01", 400, "date-out-of-range"),
        ],
    )
    def test_structured_4xx_on_the_wire(self, serve_server, path, status, code):
        got, headers, body = http_get(serve_server.url + path)
        assert got == status
        assert headers["Content-Type"] == "application/json"
        assert body["error"]["code"] == code
        assert "Traceback" not in json.dumps(body)

    def test_server_survives_a_sequence_of_faults(self, serve_server):
        for path in ("/nope", "/rankings?date=zzz", "/apa?licensee=Nobody"):
            http_get(serve_server.url + path)
        status, _, body = http_get(serve_server.url + "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_handler_crash_is_a_structured_500(self, scenario, engine):
        service = CorridorQueryService(scenario=scenario, engine=engine)
        service.routes["/boom"] = lambda engine, params: 1 / 0
        with CorridorServer(service) as server:
            status, _, body = http_get(server.url + "/boom")
            assert status == 500
            assert body["error"]["code"] == "internal"
            status, _, _ = http_get(server.url + "/healthz")
            assert status == 200


class TestLifecycle:
    def test_graceful_shutdown_drains_in_flight_requests(self, scenario, engine):
        service = CorridorQueryService(scenario=scenario, engine=engine)
        entered = threading.Event()
        release = threading.Event()

        def slow(engine, params):
            entered.set()
            release.wait(timeout=30)
            return {"slow": "done"}

        service.routes["/slow"] = slow
        server = CorridorServer(service).start()
        results: list = []
        client = threading.Thread(
            target=lambda: results.append(http_get(server.url + "/slow"))
        )
        client.start()
        assert entered.wait(timeout=30)

        closer = threading.Thread(target=server.close)
        closer.start()
        closer.join(timeout=0.3)
        # close() must still be draining: the in-flight handler is
        # blocked and no response has been produced.
        assert closer.is_alive()
        assert not results

        release.set()
        closer.join(timeout=30)
        client.join(timeout=30)
        assert not closer.is_alive()
        # The drained request completed normally, after shutdown began.
        assert results == [(200, results[0][1], {"slow": "done"})]

    def test_closed_server_refuses_connections(self, scenario, engine):
        service = CorridorQueryService(scenario=scenario, engine=engine)
        server = CorridorServer(service).start()
        url = server.url
        server.close()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url + "/healthz", timeout=5)

    def test_close_is_idempotent(self, scenario, engine):
        server = CorridorServer(
            CorridorQueryService(scenario=scenario, engine=engine)
        ).start()
        server.close()
        server.close()

    def test_run_server_blocking_entry(self, scenario, engine):
        service = CorridorQueryService(scenario=scenario, engine=engine)
        announced: list[str] = []
        ready = threading.Event()

        def announce(url: str) -> None:
            announced.append(url)
            ready.set()

        runner = threading.Thread(
            target=run_server, kwargs={"service": service, "announce": announce}
        )
        runner.start()
        assert ready.wait(timeout=30)
        status, _, body = http_get(announced[0] + "/healthz")
        assert (status, body["status"]) == (200, "ok")
        live = active_server()
        assert live is not None and live.url == announced[0]
        live.close()
        runner.join(timeout=30)
        assert not runner.is_alive()
        assert active_server() is None


class TestColdMode:
    def test_cold_service_rebuilds_per_request(self, scenario):
        shared = CorridorEngine(scenario.database, scenario.corridor)
        service = CorridorQueryService(
            scenario=scenario, engine=shared, warm=False
        )
        service.handle_url("/apa")
        service.handle_url("/apa")
        # The facade's engine never resolves anything: each request got
        # a private cold engine instead.
        assert shared.stats.snapshot.lookups == 0

    def test_cold_and_warm_payloads_are_identical(self, scenario, engine):
        warm = CorridorQueryService(scenario=scenario, engine=engine)
        cold = CorridorQueryService(scenario=scenario, warm=False)
        for url in ("/rankings", "/apa", "/map"):
            assert warm.handle_url(url) == cold.handle_url(url)
