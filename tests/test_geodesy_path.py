"""Tests for polyline geometry."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geodesy import (
    GeoPoint,
    cross_track_distance,
    cumulative_distances,
    geodesic_distance,
    geodesic_interpolate,
    nearest_point_index,
    polyline_length,
    stretch_factor,
)
from repro.geodesy.path import offset_point

A = GeoPoint(41.7580, -88.1801)
B = GeoPoint(40.7773, -74.0700)


class TestPolylineLength:
    def test_empty_and_single(self):
        assert polyline_length([]) == 0.0
        assert polyline_length([A]) == 0.0

    def test_two_points_equals_geodesic(self):
        assert polyline_length([A, B]) == pytest.approx(geodesic_distance(A, B))

    def test_subdivision_preserves_length(self):
        mids = geodesic_interpolate(A, B, [0.25, 0.5, 0.75])
        subdivided = polyline_length([A, *mids, B])
        assert subdivided == pytest.approx(geodesic_distance(A, B), rel=1e-6)

    def test_detour_is_longer(self):
        detour = offset_point(A, B, 0.5, 50_000.0)
        assert polyline_length([A, detour, B]) > geodesic_distance(A, B)


class TestCumulative:
    def test_starts_at_zero_monotone(self):
        mids = geodesic_interpolate(A, B, [0.3, 0.6])
        cumulative = cumulative_distances([A, *mids, B])
        assert cumulative[0] == 0.0
        assert all(x < y for x, y in zip(cumulative, cumulative[1:]))
        assert cumulative[-1] == pytest.approx(polyline_length([A, *mids, B]))

    def test_empty(self):
        assert cumulative_distances([]) == []


class TestStretchFactor:
    def test_straight_is_one(self):
        mids = geodesic_interpolate(A, B, [0.5])
        assert stretch_factor([A, *mids, B]) == pytest.approx(1.0, abs=1e-9)

    def test_raises_for_degenerate(self):
        with pytest.raises(ValueError):
            stretch_factor([A])
        with pytest.raises(ValueError):
            stretch_factor([A, A])

    @given(st.floats(min_value=1_000.0, max_value=100_000.0))
    @settings(max_examples=30, deadline=None)
    def test_grows_with_lateral_offset(self, lateral):
        small = stretch_factor([A, offset_point(A, B, 0.5, lateral / 2.0), B])
        large = stretch_factor([A, offset_point(A, B, 0.5, lateral), B])
        assert 1.0 < small < large


class TestInterpolate:
    def test_endpoints(self):
        points = geodesic_interpolate(A, B, [0.0, 1.0])
        assert points[0].rounded(9) == A.rounded(9)
        assert geodesic_distance(points[1], B) < 0.01

    def test_fractions_divide_distance(self):
        (midpoint,) = geodesic_interpolate(A, B, [0.5])
        d = geodesic_distance(A, B)
        assert geodesic_distance(A, midpoint) == pytest.approx(d / 2.0, rel=1e-6)

    def test_extrapolation_beyond_one(self):
        (beyond,) = geodesic_interpolate(A, B, [1.1])
        assert geodesic_distance(A, beyond) > geodesic_distance(A, B)


class TestOffsetAndCrossTrack:
    def test_offset_is_perpendicular(self):
        lateral = 10_000.0
        point = offset_point(A, B, 0.5, lateral)
        assert cross_track_distance(point, A, B) == pytest.approx(lateral, rel=0.01)

    def test_zero_offset_on_path(self):
        point = offset_point(A, B, 0.5, 0.0)
        assert cross_track_distance(point, A, B) < 5.0

    def test_sign_selects_side(self):
        left = offset_point(A, B, 0.5, -5_000.0)
        right = offset_point(A, B, 0.5, 5_000.0)
        assert geodesic_distance(left, right) == pytest.approx(10_000.0, rel=0.01)


class TestNearestPointIndex:
    def test_finds_closest_vertex(self):
        points = geodesic_interpolate(A, B, [0.0, 0.25, 0.5, 0.75, 1.0])
        (probe,) = geodesic_interpolate(A, B, [0.52])
        assert nearest_point_index(probe, points) == 2

    def test_raises_on_empty(self):
        with pytest.raises(ValueError):
            nearest_point_index(A, [])
