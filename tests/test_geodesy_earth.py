"""Unit and property tests for the WGS84 geodesic solver."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geodesy import (
    EARTH_EQUATORIAL_RADIUS_M,
    EARTH_MEAN_RADIUS_M,
    EARTH_POLAR_RADIUS_M,
    GeoPoint,
    geodesic_azimuth,
    geodesic_destination,
    geodesic_distance,
    geodesic_inverse,
    great_circle_distance,
)

JFK = GeoPoint(40.6413, -73.7781)
LHR = GeoPoint(51.4700, -0.4543)
CME = GeoPoint(41.7580, -88.1801)
NY4 = GeoPoint(40.7773, -74.0700)

# Moderate-latitude strategy away from the poles, where geodesics are
# numerically friendly (the corridor's regime).
lat = st.floats(min_value=-70.0, max_value=70.0, allow_nan=False)
lon = st.floats(min_value=-179.0, max_value=179.0, allow_nan=False)


class TestGeoPoint:
    def test_latitude_bounds_enforced(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ValueError):
            GeoPoint(-91.0, 0.0)

    def test_longitude_bounds_enforced(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 181.0)

    def test_iteration_yields_lat_lon(self):
        assert tuple(GeoPoint(1.5, 2.5)) == (1.5, 2.5)

    def test_rounded_key_is_hashable_and_stable(self):
        point = GeoPoint(41.123456789, -88.987654321)
        assert point.rounded(6) == (41.123457, -88.987654)

    def test_elevation_does_not_change_distance(self):
        a = GeoPoint(41.0, -88.0, elevation_m=0.0)
        b = GeoPoint(41.0, -88.0, elevation_m=350.0)
        assert geodesic_distance(a, b) == 0.0


class TestInverse:
    def test_known_transatlantic_distance(self):
        # GeographicLib gives 5554.93 km for JFK-LHR on WGS84.
        assert geodesic_distance(JFK, LHR) == pytest.approx(5_554_930.0, rel=2e-4)

    def test_corridor_distance_matches_paper(self):
        assert geodesic_distance(CME, NY4) / 1000.0 == pytest.approx(1186.0, abs=0.2)

    def test_zero_for_identical_points(self):
        assert geodesic_distance(CME, CME) == 0.0

    def test_symmetry(self):
        assert geodesic_distance(CME, NY4) == pytest.approx(
            geodesic_distance(NY4, CME), abs=1e-6
        )

    def test_equatorial_degree_length(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 1.0)
        expected = math.radians(1.0) * EARTH_EQUATORIAL_RADIUS_M
        assert geodesic_distance(a, b) == pytest.approx(expected, rel=1e-6)

    def test_meridian_arc_uses_polar_flattening(self):
        # A degree of latitude near the pole is longer than near the
        # equator on an oblate ellipsoid.
        near_equator = geodesic_distance(GeoPoint(0.0, 10.0), GeoPoint(1.0, 10.0))
        near_pole = geodesic_distance(GeoPoint(79.0, 10.0), GeoPoint(80.0, 10.0))
        assert near_pole > near_equator

    def test_azimuth_eastward(self):
        azimuth = geodesic_azimuth(GeoPoint(0.0, 0.0), GeoPoint(0.0, 10.0))
        assert azimuth == pytest.approx(90.0, abs=1e-9)

    def test_azimuth_to_ny_is_roughly_east(self):
        azimuth = geodesic_azimuth(CME, NY4)
        assert 90.0 < azimuth < 100.0

    def test_spherical_vs_ellipsoidal_within_half_percent(self):
        sphere = great_circle_distance(JFK, LHR)
        ellipsoid = geodesic_distance(JFK, LHR)
        assert abs(sphere - ellipsoid) / ellipsoid < 0.005

    def test_nearly_antipodal_falls_back_gracefully(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.3, 179.7)
        distance = geodesic_distance(a, b)
        assert distance == pytest.approx(math.pi * EARTH_MEAN_RADIUS_M, rel=0.01)


class TestDirect:
    def test_destination_roundtrip(self):
        destination = geodesic_destination(CME, 90.0, 10_000.0)
        assert geodesic_distance(CME, destination) == pytest.approx(10_000.0, abs=1e-4)

    def test_zero_distance_is_identity(self):
        destination = geodesic_destination(CME, 45.0, 0.0)
        assert destination.rounded(10) == CME.rounded(10)

    def test_negative_distance_reverses_bearing(self):
        forward = geodesic_destination(CME, 90.0, 5_000.0)
        backward = geodesic_destination(CME, 270.0, -5_000.0)
        assert geodesic_distance(forward, backward) < 0.01

    def test_longitude_normalised(self):
        near_dateline = GeoPoint(10.0, 179.9)
        crossed = geodesic_destination(near_dateline, 90.0, 50_000.0)
        assert -180.0 <= crossed.longitude <= 180.0

    @given(lat, lon, st.floats(0.0, 360.0), st.floats(1.0, 2_000_000.0))
    @settings(max_examples=60, deadline=None)
    def test_direct_inverse_consistency(self, latitude, longitude, azimuth, distance):
        start = GeoPoint(latitude, longitude)
        end = geodesic_destination(start, azimuth, distance)
        measured, initial_azimuth, _ = geodesic_inverse(start, end)
        assert measured == pytest.approx(distance, rel=1e-6, abs=0.01)
        # Azimuth agrees modulo 360 (undefined for coincident points).
        if distance > 10.0:
            delta = (initial_azimuth - azimuth + 180.0) % 360.0 - 180.0
            assert abs(delta) < 1e-3


class TestMetricProperties:
    @given(lat, lon, lat, lon)
    @settings(max_examples=60, deadline=None)
    def test_symmetry_property(self, lat1, lon1, lat2, lon2):
        a, b = GeoPoint(lat1, lon1), GeoPoint(lat2, lon2)
        assert geodesic_distance(a, b) == pytest.approx(
            geodesic_distance(b, a), rel=1e-9, abs=1e-6
        )

    @given(lat, lon, lat, lon, lat, lon)
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, lat1, lon1, lat2, lon2, lat3, lon3):
        a, b, c = GeoPoint(lat1, lon1), GeoPoint(lat2, lon2), GeoPoint(lat3, lon3)
        ab = geodesic_distance(a, b)
        bc = geodesic_distance(b, c)
        ac = geodesic_distance(a, c)
        assert ac <= ab + bc + 1.0  # 1 m numerical slack

    @given(lat, lon, lat, lon)
    @settings(max_examples=60, deadline=None)
    def test_non_negative_and_bounded(self, lat1, lon1, lat2, lon2):
        distance = geodesic_distance(GeoPoint(lat1, lon1), GeoPoint(lat2, lon2))
        assert 0.0 <= distance <= math.pi * EARTH_EQUATORIAL_RADIUS_M * 1.01


def test_earth_constants_consistent():
    assert EARTH_POLAR_RADIUS_M < EARTH_MEAN_RADIUS_M < EARTH_EQUATORIAL_RADIUS_M
