"""Tests for the LEO constellation substrate and the Fig 5 model."""

from __future__ import annotations

import math

import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.geodesy import GeoPoint, geodesic_distance
from repro.geodesy.earth import EARTH_MEAN_RADIUS_M
from repro.leo.constellation import (
    LOW_SHELL,
    STARLINK_SHELL,
    Constellation,
    WalkerShell,
    ecef_of,
)
from repro.leo.isl import isl_graph
from repro.leo.latency import (
    constellation_latency_s,
    fiber_latency_s,
    leo_fiber_crossover_km,
    leo_lower_bound_s,
    microwave_latency_s,
    sweep_distances,
    transatlantic_endpoints,
)

CME = GeoPoint(41.7580, -88.1801)
NY4 = GeoPoint(40.7773, -74.0700)

SMALL_SHELL = WalkerShell(
    altitude_m=550_000.0, inclination_deg=53.0, n_planes=12, sats_per_plane=8
)


class TestShell:
    def test_validation(self):
        with pytest.raises(ValueError):
            WalkerShell(-1.0, 53.0, 10, 10)
        with pytest.raises(ValueError):
            WalkerShell(550_000.0, 53.0, 0, 10)
        with pytest.raises(ValueError):
            WalkerShell(550_000.0, 53.0, 10, 10, phase_factor=10)

    def test_orbital_period_plausible(self):
        # 550 km circular orbit: ~95.6 minutes.
        assert STARLINK_SHELL.orbital_period_s == pytest.approx(95.6 * 60.0, rel=0.01)

    def test_total_satellites(self):
        assert STARLINK_SHELL.total_satellites == 72 * 22


class TestConstellation:
    def test_all_satellites_on_shell(self):
        constellation = Constellation(SMALL_SHELL)
        radius = SMALL_SHELL.orbital_radius_m
        for sat in constellation.satellites:
            assert math.sqrt(sat.x**2 + sat.y**2 + sat.z**2) == pytest.approx(
                radius, rel=1e-9
            )

    def test_inclination_bounds_latitude(self):
        constellation = Constellation(SMALL_SHELL)
        max_z = max(abs(sat.z) for sat in constellation.satellites)
        limit = SMALL_SHELL.orbital_radius_m * math.sin(math.radians(53.0))
        assert max_z <= limit * 1.000001

    def test_epoch_moves_satellites(self):
        at_zero = Constellation(SMALL_SHELL, epoch_s=0.0).satellite(0, 0)
        later = Constellation(SMALL_SHELL, epoch_s=120.0).satellite(0, 0)
        assert (at_zero.x, at_zero.y, at_zero.z) != (later.x, later.y, later.z)

    def test_visibility_respects_elevation_mask(self):
        constellation = Constellation(Constellation(SMALL_SHELL).shell)
        loose = constellation.visible_from(CME, min_elevation_deg=10.0)
        strict = constellation.visible_from(CME, min_elevation_deg=60.0)
        assert len(loose) >= len(strict)
        for _, slant in loose:
            assert slant >= SMALL_SHELL.altitude_m * 0.999

    def test_ecef_ground_radius(self):
        x, y, z = ecef_of(CME)
        assert math.sqrt(x * x + y * y + z * z) == pytest.approx(EARTH_MEAN_RADIUS_M)


class TestIslGraph:
    def test_plus_grid_degree_four(self):
        graph = isl_graph(Constellation(SMALL_SHELL))
        assert graph.number_of_nodes() == SMALL_SHELL.total_satellites
        degrees = {degree for _, degree in graph.degree()}
        assert degrees == {4}

    def test_edge_count(self):
        graph = isl_graph(Constellation(SMALL_SHELL))
        assert graph.number_of_edges() == 2 * SMALL_SHELL.total_satellites

    def test_latency_consistent_with_length(self):
        graph = isl_graph(Constellation(SMALL_SHELL))
        for _, _, data in list(graph.edges(data=True))[:10]:
            assert data["latency_s"] == pytest.approx(
                data["length_m"] / SPEED_OF_LIGHT
            )

    def test_intra_plane_spacing_uniform(self):
        constellation = Constellation(SMALL_SHELL)
        graph = isl_graph(constellation)
        a = constellation.satellite(0, 0)
        b = constellation.satellite(0, 1)
        expected = 2.0 * SMALL_SHELL.orbital_radius_m * math.sin(
            math.pi / SMALL_SHELL.sats_per_plane
        )
        assert graph.edges[a.key, b.key]["length_m"] == pytest.approx(expected, rel=1e-9)


class TestLatencyModels:
    def test_microwave_beats_leo_on_land(self):
        # Fig 5: at terrestrial scales (the corridor is ~1,200 km; even a
        # transcontinental path is <7,000 km) the up/down overhead keeps
        # LEO behind line-of-sight microwave.
        for point in sweep_distances([500.0, 1186.0, 5000.0, 6500.0]):
            assert point.microwave_beats_leo

    def test_leo_beats_fiber_beyond_crossover(self):
        crossover = leo_fiber_crossover_km(550_000.0)
        assert 400.0 < crossover < 2_000.0
        points = sweep_distances([crossover * 0.8, crossover * 1.2])
        assert points[0].fiber_ms < points[0].leo_550_ms
        assert points[1].leo_550_ms < points[1].fiber_ms
        # The lower shell crosses over even earlier.
        assert leo_fiber_crossover_km(300_000.0) < crossover

    def test_lower_altitude_is_faster(self):
        (point,) = sweep_distances([5_000.0])
        assert point.leo_300_ms < point.leo_550_ms

    def test_leo_bound_includes_up_down_overhead(self):
        bound_s = leo_lower_bound_s(0.0, 550_000.0)
        assert bound_s == pytest.approx(2.0 * 550_000.0 / SPEED_OF_LIGHT)

    def test_exact_route_respects_lower_bound(self):
        constellation = Constellation(STARLINK_SHELL)
        exact = constellation_latency_s(constellation, CME, NY4)
        assert exact is not None
        assert exact >= leo_lower_bound_s(geodesic_distance(CME, NY4), 550_000.0)

    def test_corridor_comparison_matches_fig5(self):
        # Fig 5's claim: even the best LEO path loses to terrestrial MW on
        # the Chicago-NJ corridor.
        constellation = Constellation(STARLINK_SHELL)
        exact = constellation_latency_s(constellation, CME, NY4)
        mw = microwave_latency_s(geodesic_distance(CME, NY4))
        assert exact > mw

    def test_transatlantic_leo_beats_fiber(self):
        # §6: for Frankfurt-Washington, LEO beats today's fiber.
        frankfurt, washington = transatlantic_endpoints()
        constellation = Constellation(STARLINK_SHELL)
        exact = constellation_latency_s(constellation, frankfurt, washington)
        fiber = fiber_latency_s(geodesic_distance(frankfurt, washington))
        assert exact < fiber

    def test_input_validation(self):
        with pytest.raises(ValueError):
            microwave_latency_s(-1.0)
        with pytest.raises(ValueError):
            microwave_latency_s(1.0, stretch=0.9)
        with pytest.raises(ValueError):
            fiber_latency_s(-1.0)
        with pytest.raises(ValueError):
            leo_lower_bound_s(100.0, 0.0)

    def test_no_visibility_returns_none(self):
        # A tiny sparse shell leaves most ground points uncovered at a
        # strict elevation mask.
        sparse = Constellation(
            WalkerShell(550_000.0, 53.0, n_planes=2, sats_per_plane=2)
        )
        result = constellation_latency_s(
            sparse, CME, NY4, min_elevation_deg=80.0
        )
        assert result is None
