"""Tests for the speed-of-light latency model."""

from __future__ import annotations

import pytest

from repro.constants import FIBER_SPEED, SPEED_OF_LIGHT
from repro.core.latency import (
    LatencyModel,
    PAPER_LATENCY_MODEL,
    seconds_to_ms,
    seconds_to_us,
)


class TestDefaults:
    def test_paper_model_speeds(self):
        assert PAPER_LATENCY_MODEL.microwave_speed == SPEED_OF_LIGHT
        assert PAPER_LATENCY_MODEL.fiber_speed == pytest.approx(
            2.0 * SPEED_OF_LIGHT / 3.0
        )
        assert PAPER_LATENCY_MODEL.per_tower_overhead_s == 0.0

    def test_minimum_achievable_latency_matches_paper(self):
        # §4: "the minimum achievable latency of 3.955 ms" over 1,186 km.
        latency_ms = seconds_to_ms(PAPER_LATENCY_MODEL.geodesic_latency_s(1_186_000.0))
        assert latency_ms == pytest.approx(3.956, abs=0.002)


class TestArithmetic:
    def test_microwave_at_c(self):
        model = LatencyModel()
        assert model.microwave_latency_s(SPEED_OF_LIGHT) == pytest.approx(1.0)

    def test_fiber_fifty_percent_slower(self):
        model = LatencyModel()
        d = 100_000.0
        assert model.fiber_latency_s(d) == pytest.approx(
            1.5 * model.microwave_latency_s(d)
        )

    def test_link_latency_dispatch(self):
        model = LatencyModel()
        assert model.link_latency_s(1000.0, "microwave") < model.link_latency_s(
            1000.0, "fiber"
        )
        with pytest.raises(ValueError):
            model.link_latency_s(1000.0, "carrier-pigeon")

    def test_tower_overhead_scales(self):
        model = LatencyModel(per_tower_overhead_s=1.4e-6)
        assert model.tower_overhead_s(25) == pytest.approx(35e-6)

    def test_crossover_arithmetic_from_section3(self):
        # JM: 22 towers at 3.96597 ms; NLN: 25 towers at 3.96171 ms.  With
        # per-tower overhead t, JM wins when 3.96597 + 22t < 3.96171 + 25t,
        # i.e. t > 4.26us/3 = 1.42us — the paper's ~1.4us figure.
        gap_ms = 3.96597 - 3.96171
        crossover_us = gap_ms * 1000.0 / (25 - 22)
        assert crossover_us == pytest.approx(1.42, abs=0.01)


class TestValidation:
    def test_rejects_superluminal(self):
        with pytest.raises(ValueError):
            LatencyModel(microwave_speed=SPEED_OF_LIGHT * 1.1)

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ValueError):
            LatencyModel(fiber_speed=0.0)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ValueError):
            LatencyModel(per_tower_overhead_s=-1.0)

    def test_rejects_negative_lengths(self):
        model = LatencyModel()
        with pytest.raises(ValueError):
            model.microwave_latency_s(-1.0)
        with pytest.raises(ValueError):
            model.fiber_latency_s(-1.0)
        with pytest.raises(ValueError):
            model.geodesic_latency_s(-1.0)
        with pytest.raises(ValueError):
            model.tower_overhead_s(-1)


def test_unit_conversions():
    assert seconds_to_ms(0.00396171) == pytest.approx(3.96171)
    assert seconds_to_us(4e-07) == pytest.approx(0.4)
