"""Tests for line-of-sight clearance and synthetic terrain."""

from __future__ import annotations

import pytest

from repro.geodesy import GeoPoint
from repro.radio.clearance import (
    ClearanceProfile,
    SyntheticTerrain,
    earth_bulge_m,
    height_vs_hop_length,
    required_antenna_height_m,
)

START = GeoPoint(41.3, -84.0)


class TestTerrain:
    def test_deterministic(self):
        t1, t2 = SyntheticTerrain(7), SyntheticTerrain(7)
        probe = GeoPoint(41.123, -85.456)
        assert t1.elevation_m(probe) == t2.elevation_m(probe)

    def test_bounded_relief(self):
        terrain = SyntheticTerrain(3, base_m=220.0, amplitude_m=60.0)
        for i in range(50):
            point = GeoPoint(40.0 + i * 0.07, -88.0 + i * 0.13)
            assert 160.0 <= terrain.elevation_m(point) <= 280.0

    def test_smooth(self):
        terrain = SyntheticTerrain(3)
        a = terrain.elevation_m(GeoPoint(41.0, -85.0))
        b = terrain.elevation_m(GeoPoint(41.0001, -85.0))  # ~11 m away
        assert abs(a - b) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticTerrain(amplitude_m=-1.0)
        with pytest.raises(ValueError):
            SyntheticTerrain(octaves=0)


class TestEarthBulge:
    def test_reference_value(self):
        # Mid-point of a 64 km hop: 32e3^2 / (2 * 4/3 * 6371e3) = 60 m.
        assert earth_bulge_m(32_000.0, 32_000.0) == pytest.approx(60.3, abs=0.5)

    def test_zero_at_endpoints(self):
        assert earth_bulge_m(0.0, 50_000.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            earth_bulge_m(-1.0, 1.0)


class TestRequiredHeight:
    def test_plausible_magnitudes(self):
        terrain = SyntheticTerrain(5)
        end = START.destination(95.0, 48_500.0)
        profile = required_antenna_height_m(START, end, 11.0, terrain)
        # A ~48 km hop over rolling terrain needs a tall but buildable
        # tower: bulge ~45 m + fresnel ~11 m + terrain swings.
        assert 30.0 <= profile.required_height_m <= 250.0
        assert profile.feasible

    def test_height_grows_superlinearly_with_hop(self):
        # On flat terrain the requirement is purely bulge + Fresnel, so
        # the quadratic bulge term dominates; over real terrain local
        # relief adds noise on top of this trend.
        flat = SyntheticTerrain(5, amplitude_m=0.0)
        profiles = height_vs_hop_length(
            START, 95.0, [20.0, 40.0, 80.0], terrain=flat
        )
        heights = [p.required_height_m for p in profiles]
        assert heights[0] < heights[1] < heights[2]
        # The bulge term is quadratic: doubling the hop more than
        # doubles the incremental height requirement.
        assert heights[2] - heights[1] > heights[1] - heights[0]

    def test_terrain_relief_perturbs_but_does_not_dwarf_geometry(self):
        rough = height_vs_hop_length(START, 95.0, [80.0])[0]
        flat = height_vs_hop_length(
            START, 95.0, [80.0], terrain=SyntheticTerrain(0, amplitude_m=0.0)
        )[0]
        # Long hops are bulge-dominated: terrain changes the answer by
        # less than the bulge itself (~120 m at 80 km).
        assert abs(rough.required_height_m - flat.required_height_m) < 120.0

    def test_lower_frequency_needs_more_clearance(self):
        # F1 radius ~ 1/sqrt(f): 6 GHz needs a (slightly) taller tower
        # than 18 GHz on the same hop.
        terrain = SyntheticTerrain(5)
        end = START.destination(95.0, 40_000.0)
        low = required_antenna_height_m(START, end, 6.0, terrain)
        high = required_antenna_height_m(START, end, 18.0, terrain)
        assert low.required_height_m > high.required_height_m

    def test_worst_obstacle_recorded(self):
        terrain = SyntheticTerrain(5)
        end = START.destination(95.0, 60_000.0)
        profile = required_antenna_height_m(START, end, 11.0, terrain)
        assert 0.0 < profile.worst_obstacle_fraction < 1.0

    def test_validation(self):
        terrain = SyntheticTerrain(5)
        end = START.destination(95.0, 10_000.0)
        with pytest.raises(ValueError):
            required_antenna_height_m(START, end, 11.0, terrain, samples=2)
        with pytest.raises(ValueError):
            height_vs_hop_length(START, 95.0, [0.0])

    def test_infeasible_hop_flagged(self):
        profiles = height_vs_hop_length(START, 95.0, [150.0])
        (profile,) = profiles
        # A 150 km hop needs >500 m of structure through the bulge alone.
        assert not profile.feasible
        assert isinstance(profile, ClearanceProfile)
