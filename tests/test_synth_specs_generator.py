"""Tests for spec validation and the license generator."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.core.corridor import chicago_nj_corridor
from repro.core.reconstruction import NetworkReconstructor
from repro.synth.generator import (
    CalibrationError,
    NetworkBuilder,
    _mw_length_target_m,
    build_network_licenses,
)
from repro.synth.specs import (
    BranchSpec,
    EraSpec,
    FrequencyProfile,
    NetworkSpec,
)

CORRIDOR = chicago_nj_corridor()
FREQS = FrequencyProfile(trunk_bands=(("11GHz", 1.0),))


def _spec(**overrides) -> NetworkSpec:
    defaults = dict(
        name="Unit Test Net",
        callsign_prefix="WQUT",
        seed=99,
        trunk_links=12,
        ny4_target_ms=3.9700,
        frequency_profile=FREQS,
    )
    defaults.update(overrides)
    return NetworkSpec(**defaults)


class TestSpecValidation:
    def test_frequency_profile_validation(self):
        with pytest.raises(ValueError):
            FrequencyProfile(trunk_bands=(("99GHz", 1.0),))
        with pytest.raises(ValueError):
            FrequencyProfile(trunk_bands=())
        with pytest.raises(ValueError):
            FrequencyProfile(trunk_bands=(("6GHz", -1.0),))

    def test_branch_validation(self):
        with pytest.raises(ValueError):
            BranchSpec("NYSE", split_link=0, n_links=5, latency_target_ms=3.9)
        with pytest.raises(ValueError):
            BranchSpec("NYSE", split_link=5, n_links=5, latency_target_ms=3.9,
                       bypass_covered=(7,))

    def test_era_validation(self):
        with pytest.raises(ValueError):
            EraSpec(dt.date(2015, 1, 1), None, 10, coverage=1.0)  # disconnected needs <1
        with pytest.raises(ValueError):
            EraSpec(dt.date(2015, 1, 1), 3.98, 10, coverage=0.5)  # connected needs full

    def test_network_spec_validation(self):
        with pytest.raises(ValueError, match="beyond the trunk"):
            _spec(branches=(BranchSpec("NYSE", split_link=20, n_links=4,
                                       latency_target_ms=3.95),))
        with pytest.raises(ValueError, match="chronological"):
            _spec(eras=(
                EraSpec(dt.date(2016, 1, 1), 3.99, 12),
                EraSpec(dt.date(2015, 1, 1), 3.98, 12),
            ))
        with pytest.raises(ValueError, match="out of range"):
            _spec(trunk_bypass_covered=(40,))
        with pytest.raises(ValueError, match="duplicate branch"):
            _spec(branches=(
                BranchSpec("NYSE", 4, 4, 3.95),
                BranchSpec("NYSE", 6, 4, 3.96),
            ))

    def test_era_boundaries(self):
        spec = _spec(
            eras=(
                EraSpec(dt.date(2015, 1, 10), 3.99, 12),
                EraSpec(dt.date(2016, 2, 10), 3.985, 12),
            ),
            final_era_start=dt.date(2018, 3, 1),
        )
        boundaries = spec.era_boundaries()
        assert boundaries[0][1] == dt.date(2016, 2, 10)
        assert boundaries[1][1] == dt.date(2018, 3, 1)


class TestCalibration:
    def test_latency_target_hit_through_pipeline(self):
        licenses = build_network_licenses(_spec(), CORRIDOR)
        reconstructor = NetworkReconstructor(CORRIDOR)
        network = reconstructor.reconstruct(licenses, dt.date(2020, 4, 1))
        route = network.lowest_latency_route("CME", "NY4")
        assert route.latency_ms == pytest.approx(3.9700, abs=2e-5)
        assert route.tower_count == 13  # trunk_links + 1

    def test_impossible_target_raises(self):
        with pytest.raises(CalibrationError):
            build_network_licenses(_spec(ny4_target_ms=3.90), CORRIDOR)

    def test_mw_length_target_arithmetic(self):
        # 3.9700 ms with 1.7 km of fiber: L = c*t - 1.5*fiber.
        length = _mw_length_target_m(3.9700, 1_700.0)
        assert length == pytest.approx(299_792_458.0 * 3.97e-3 - 2_550.0)

    def test_target_below_fiber_raises(self):
        with pytest.raises(CalibrationError):
            _mw_length_target_m(0.001, 1_000_000.0)

    def test_branch_calibration(self):
        spec = _spec(
            branches=(
                BranchSpec("NASDAQ", split_link=4, n_links=10,
                           latency_target_ms=3.9450, gateway_km=0.45),
            )
        )
        licenses = build_network_licenses(spec, CORRIDOR)
        network = NetworkReconstructor(CORRIDOR).reconstruct(
            licenses, dt.date(2020, 4, 1)
        )
        route = network.lowest_latency_route("CME", "NASDAQ")
        assert route.latency_ms == pytest.approx(3.9450, abs=2e-5)


class TestStructure:
    def test_bypass_coverage_produces_apa(self):
        from repro.metrics.apa import apa_percent

        spec = _spec(trunk_bypass_covered=(2, 3, 6, 7, 9))
        licenses = build_network_licenses(spec, CORRIDOR)
        network = NetworkReconstructor(CORRIDOR).reconstruct(
            licenses, dt.date(2020, 4, 1)
        )
        assert apa_percent(network, "CME", "NY4") == round(100 * 5 / 12)

    def test_history_eras_activate_in_sequence(self):
        spec = _spec(
            eras=(
                EraSpec(dt.date(2015, 3, 1), None, 12, coverage=0.5, seed_salt=1),
                EraSpec(dt.date(2016, 3, 1), 3.9900, 12, seed_salt=2),
            ),
            final_era_start=dt.date(2019, 1, 15),
        )
        licenses = build_network_licenses(spec, CORRIDOR)
        reconstructor = NetworkReconstructor(CORRIDOR)
        partial = reconstructor.reconstruct(licenses, dt.date(2015, 6, 1))
        assert not partial.is_connected("CME", "NY4")
        era1 = reconstructor.reconstruct(licenses, dt.date(2016, 6, 1))
        assert era1.lowest_latency_route("CME", "NY4").latency_ms == pytest.approx(
            3.9900, abs=2e-5
        )
        final = reconstructor.reconstruct(licenses, dt.date(2020, 1, 1))
        assert final.lowest_latency_route("CME", "NY4").latency_ms == pytest.approx(
            3.9700, abs=2e-5
        )

    def test_license_count_padding(self):
        spec = _spec(
            license_count_targets=((dt.date(2020, 4, 1), 40),),
        )
        licenses = build_network_licenses(spec, CORRIDOR)
        active = [lic for lic in licenses if lic.is_active(dt.date(2020, 4, 1))]
        assert len(active) == 40

    def test_padding_duplicates_do_not_change_latency(self):
        bare = build_network_licenses(_spec(), CORRIDOR)
        padded = build_network_licenses(
            _spec(license_count_targets=((dt.date(2020, 4, 1), 40),)), CORRIDOR
        )
        reconstructor = NetworkReconstructor(CORRIDOR)
        date = dt.date(2020, 4, 1)
        bare_route = reconstructor.reconstruct(bare, date).lowest_latency_route("CME", "NY4")
        padded_route = reconstructor.reconstruct(padded, date).lowest_latency_route("CME", "NY4")
        assert padded_route.latency_ms == pytest.approx(bare_route.latency_ms, abs=1e-9)
        assert padded_route.tower_count == bare_route.tower_count

    def test_impossible_padding_target_raises(self):
        spec = _spec(license_count_targets=((dt.date(2020, 4, 1), 3),))
        with pytest.raises(ValueError, match="already exceed"):
            build_network_licenses(spec, CORRIDOR)

    def test_wind_down_cancels_everything(self):
        spec = _spec(
            wind_down=(dt.date(2017, 1, 1), dt.date(2018, 1, 1)),
            final_era_start=dt.date(2015, 1, 15),
        )
        licenses = build_network_licenses(spec, CORRIDOR)
        assert all(lic.cancellation_date is not None for lic in licenses)
        assert not any(lic.is_active(dt.date(2018, 6, 1)) for lic in licenses)
        assert any(lic.is_active(dt.date(2016, 6, 1)) for lic in licenses)

    def test_paired_licensing_halves_filings(self):
        single = build_network_licenses(_spec(), CORRIDOR)
        paired = build_network_licenses(
            _spec(links_per_license=2, seed=98, callsign_prefix="WQUP",
                  name="Paired Net"), CORRIDOR
        )
        assert len(paired) < len(single)
        # Pairing must not change the reconstructed route.
        reconstructor = NetworkReconstructor(CORRIDOR)
        route = reconstructor.reconstruct(
            paired, dt.date(2020, 4, 1)
        ).lowest_latency_route("CME", "NY4")
        assert route.tower_count == 13

    def test_spur_links_do_not_affect_route(self):
        bare = build_network_licenses(_spec(), CORRIDOR)
        spurred = build_network_licenses(_spec(spur_links=3), CORRIDOR)
        reconstructor = NetworkReconstructor(CORRIDOR)
        date = dt.date(2020, 4, 1)
        bare_route = reconstructor.reconstruct(bare, date).lowest_latency_route("CME", "NY4")
        spur_route = reconstructor.reconstruct(spurred, date).lowest_latency_route("CME", "NY4")
        assert spur_route.latency_ms == pytest.approx(bare_route.latency_ms, abs=1e-6)

    def test_deterministic_generation(self):
        first = build_network_licenses(_spec(), CORRIDOR)
        second = build_network_licenses(_spec(), CORRIDOR)
        assert [lic.license_id for lic in first] == [lic.license_id for lic in second]
        assert all(
            a.locations[1].point.rounded(9) == b.locations[1].point.rounded(9)
            for a, b in zip(first, second)
        )

    def test_calibration_report_populated(self):
        builder = NetworkBuilder(_spec(), CORRIDOR)
        builder.build()
        assert "trunk[0]" in builder.calibration_report
