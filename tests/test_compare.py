"""The hybrid MW/fiber/LEO corridor comparison (Fig 5, per corridor)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.compare import (
    CorridorComparison,
    compare_corridor,
    compare_corridors,
)
from repro.serve.payloads import render_payload


@pytest.fixture(scope="module")
def rows():
    return compare_corridors()


class TestCompareCorridor:
    def test_paper_row(self, scenario, engine):
        row = compare_corridor("paper2020")
        assert row.scenario == "paper2020"
        assert (row.source, row.target) == ("CME", "NY4")
        assert row.geodesic_km == pytest.approx(1186.0, abs=1.0)
        assert row.best_licensee == "New Line Networks"
        assert f"{row.microwave_ms:.5f}" == "3.96172"
        # The paper's §6 ordering on the short corridor: the measured
        # microwave network sits just above c and *below* both LEO
        # bounds, and LEO still undercuts the fiber route.
        assert row.cbound_ms < row.microwave_ms < row.leo_300_ms
        assert row.microwave_beats_leo is True
        assert row.leo_beats_fiber is True

    def test_tokyo_regime_change(self):
        row = compare_corridor("tokyo-singapore")
        assert row.geodesic_km == pytest.approx(5313.6, abs=1.0)
        # Long haul: the LEO bounds slide under fiber by a wide margin
        # and close to within ~1 ms of the calibrated microwave network.
        assert row.leo_550_ms < row.fiber_ms / 1.8
        assert row.leo_300_ms - row.microwave_ms < 1.0
        assert row.microwave_beats_leo is True

    def test_synthetic_reference_accepted(self):
        row = compare_corridor("synthetic:seed=2,networks=1,links=12")
        assert row.scenario == "synthetic-s2-n1-l12"
        assert row.best_licensee == "Synthetic Net 01"


class TestCompareCorridors:
    def test_defaults_to_concrete_scenarios_sorted_by_length(self, rows):
        assert [row.scenario for row in rows] == [
            "europe2020",
            "paper2020",
            "tokyo-singapore",
        ]
        lengths = [row.geodesic_km for row in rows]
        assert lengths == sorted(lengths)

    def test_every_row_is_physical(self, rows):
        for row in rows:
            assert row.cbound_ms < row.microwave_ms
            assert row.cbound_ms < row.leo_300_ms < row.leo_550_ms
            assert row.microwave_ms < row.fiber_ms

    def test_explicit_refs_respected(self):
        rows = compare_corridors(("paper2020",))
        assert [row.scenario for row in rows] == ["paper2020"]

    def test_as_dict_renders_canonically(self, rows):
        payload = {"corridors": [row.as_dict() for row in rows]}
        decoded = json.loads(render_payload(payload))
        assert [c["scenario"] for c in decoded["corridors"]] == [
            row.scenario for row in rows
        ]
        assert decoded["corridors"][0]["leo_beats_fiber"] is True

    def test_deterministic_across_calls(self, rows):
        assert [row.as_dict() for row in compare_corridors()] == [
            row.as_dict() for row in rows
        ]


class TestCompareCli:
    def test_text_table(self, capsys):
        from repro.cli import main

        assert main(["compare", "europe2020", "paper2020"]) == 0
        out = capsys.readouterr().out
        assert "Hybrid MW / fiber / LEO latency per corridor" in out
        assert "LD4-FR2" in out and "CME-NY4" in out

    def test_json_payload(self, capsys):
        from repro.cli import main

        assert main(["compare", "paper2020", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["endpoint"] == "compare"
        (row,) = payload["corridors"]
        assert row["scenario"] == "paper2020"
        assert row["microwave_beats_leo"] is True

    def test_bad_reference_exits_2(self, capsys):
        from repro.cli import main

        assert main(["compare", "nowhere2020"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


def test_comparison_is_frozen():
    row = compare_corridor("paper2020")
    assert isinstance(row, CorridorComparison)
    with pytest.raises(AttributeError):
        row.scenario = "other"
