"""Tests for endpoint stitching."""

from __future__ import annotations

import pytest

from repro.core.stitching import EndpointStitcher, stitch_licenses
from repro.geodesy import GeoPoint, geodesic_destination
from repro.uls.records import TowerLocation
from tests.conftest import make_license

BASE = GeoPoint(41.75, -88.00)


def _loc(point: GeoPoint, number: int = 1, **kwargs) -> TowerLocation:
    return TowerLocation(number, point, **kwargs)


class TestEndpointStitcher:
    def test_merges_endpoints_within_tolerance(self):
        stitcher = EndpointStitcher(30.0)
        nearby = geodesic_destination(BASE, 90.0, 10.0)
        assert stitcher.add_endpoint(_loc(BASE), "L1") == stitcher.add_endpoint(
            _loc(nearby), "L2"
        )

    def test_keeps_distinct_towers_apart(self):
        stitcher = EndpointStitcher(30.0)
        distinct = geodesic_destination(BASE, 90.0, 100.0)
        assert stitcher.add_endpoint(_loc(BASE), "L1") != stitcher.add_endpoint(
            _loc(distinct), "L2"
        )

    def test_tolerance_boundary(self):
        stitcher = EndpointStitcher(30.0)
        at_29 = geodesic_destination(BASE, 0.0, 29.0)
        at_31 = geodesic_destination(BASE, 0.0, 31.0)
        first = stitcher.add_endpoint(_loc(BASE), "L1")
        assert stitcher.add_endpoint(_loc(at_29), "L2") == first
        assert stitcher.add_endpoint(_loc(at_31), "L3") != first

    def test_metadata_enriched_on_merge(self):
        stitcher = EndpointStitcher(30.0)
        stitcher.add_endpoint(_loc(BASE, structure_height_m=50.0), "L1")
        stitcher.add_endpoint(
            _loc(BASE, structure_height_m=120.0, site_name="Aurora #1"), "L2"
        )
        towers, _ = stitcher.towers()
        (tower,) = towers
        assert tower.structure_height_m == 120.0
        assert tower.site_name == "Aurora #1"
        assert tower.license_ids == ("L1", "L2")

    def test_tower_ids_sorted_west_to_east(self):
        stitcher = EndpointStitcher(30.0)
        east = geodesic_destination(BASE, 90.0, 50_000.0)
        stitcher.add_endpoint(_loc(east), "L1")  # added first, but further east
        stitcher.add_endpoint(_loc(BASE), "L2")
        towers, _ = stitcher.towers()
        assert towers[0].point.longitude < towers[1].point.longitude
        assert towers[0].tower_id == "twr-0001"

    def test_ground_elevation_max_merged(self):
        stitcher = EndpointStitcher(30.0)
        stitcher.add_endpoint(_loc(BASE, ground_elevation_m=180.0), "L1")
        stitcher.add_endpoint(_loc(BASE, ground_elevation_m=200.5), "L2")
        towers, _ = stitcher.towers()
        assert towers[0].ground_elevation_m == 200.5

    def test_metadata_independent_of_endpoint_order(self):
        # The numeric fields max-merge, so any arrival order of the same
        # endpoints yields the same tower metadata (site name and anchor
        # stay first-seen by design; here every variant shares both).
        variants = [
            _loc(BASE, ground_elevation_m=150.0, structure_height_m=80.0),
            _loc(BASE, ground_elevation_m=201.0, structure_height_m=50.0),
            _loc(BASE, ground_elevation_m=175.0, structure_height_m=95.0),
            _loc(BASE, ground_elevation_m=120.0, structure_height_m=60.0),
        ]
        import itertools

        results = set()
        for order in itertools.permutations(range(len(variants))):
            stitcher = EndpointStitcher(30.0)
            for position in order:
                stitcher.add_endpoint(variants[position], f"L{position}")
            (tower,), _ = stitcher.towers()
            results.add((tower.ground_elevation_m, tower.structure_height_m))
        assert results == {(201.0, 95.0)}

    def test_requires_positive_tolerance(self):
        with pytest.raises(ValueError):
            EndpointStitcher(0.0)


class TestStitchLicenses:
    def test_chain_of_two_licenses_shares_middle_tower(self):
        middle = geodesic_destination(BASE, 90.0, 40_000.0)
        end = geodesic_destination(BASE, 90.0, 80_000.0)
        lic1 = make_license(
            "L1", points=((BASE.latitude, BASE.longitude), (middle.latitude, middle.longitude))
        )
        lic2 = make_license(
            "L2", points=((middle.latitude, middle.longitude), (end.latitude, end.longitude))
        )
        towers, links = stitch_licenses([lic1, lic2])
        assert len(towers) == 3
        assert len(links) == 2

    def test_duplicate_filings_merge_into_one_link(self):
        far = geodesic_destination(BASE, 90.0, 40_000.0)
        points = ((BASE.latitude, BASE.longitude), (far.latitude, far.longitude))
        lic1 = make_license("L1", points=points, frequencies=(10995.0,))
        lic2 = make_license("L2", points=points, frequencies=(11485.0,))
        towers, links = stitch_licenses([lic1, lic2])
        assert len(towers) == 2
        (link,) = links
        assert link.frequencies_mhz == (10995.0, 11485.0)
        assert link.license_ids == ("L1", "L2")

    def test_link_length_uses_canonical_anchor(self):
        far = geodesic_destination(BASE, 90.0, 40_000.0)
        jittered = geodesic_destination(far, 0.0, 10.0)  # second filing off by 10 m
        lic1 = make_license(
            "L1", points=((BASE.latitude, BASE.longitude), (far.latitude, far.longitude))
        )
        lic2 = make_license(
            "L2",
            points=((BASE.latitude, BASE.longitude), (jittered.latitude, jittered.longitude)),
        )
        _, links = stitch_licenses([lic1, lic2])
        (link,) = links
        assert link.length_m == pytest.approx(40_000.0, abs=1.0)

    def test_degenerate_filing_dropped(self):
        # Both endpoints stitch to the same tower: no link results.
        near = geodesic_destination(BASE, 90.0, 5.0)
        lic = make_license(
            "L1", points=((BASE.latitude, BASE.longitude), (near.latitude, near.longitude))
        )
        towers, links = stitch_licenses([lic])
        assert len(towers) == 1
        assert links == []

    def test_empty_input(self):
        towers, links = stitch_licenses([])
        assert towers == [] and links == []

    def test_deterministic_output_order(self):
        far = geodesic_destination(BASE, 90.0, 40_000.0)
        farther = geodesic_destination(BASE, 90.0, 80_000.0)
        lics = [
            make_license("L1", points=((BASE.latitude, BASE.longitude), (far.latitude, far.longitude))),
            make_license("L2", points=((far.latitude, far.longitude), (farther.latitude, farther.longitude))),
        ]
        first = stitch_licenses(lics)
        second = stitch_licenses(list(reversed(lics)))
        assert [t.point.rounded() for t in first[0]] == [
            t.point.rounded() for t in second[0]
        ]
