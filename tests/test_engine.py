"""CorridorEngine: cached results must be indistinguishable from the
cache-free kernel, and cache keys must separate parameterisations.

The load-bearing property: for ANY (licensee, date) — including dates
that alias earlier queries through the active-license fingerprint — the
engine's snapshot and route equal a fresh ``NetworkReconstructor``'s
output exactly.  One engine instance is shared across all hypothesis
examples precisely so the cache is hot and the property exercises reuse.
"""

from __future__ import annotations

import datetime as dt

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.corridor import chicago_nj_corridor, london_frankfurt_corridor
from repro.core.engine import CacheStats, CorridorEngine
from repro.core.latency import LatencyModel
from repro.core.reconstruction import NetworkReconstructor, reconstruct_all
from repro.core.timeline import latency_timeline
from repro.geodesy import GeoPoint, geodesic_inverse
from repro.geodesy.memo import GeodesicMemo, active_memo, use_memo
from repro.uls.database import UlsDatabase

from tests.conftest import make_license

_LICENSEES = (
    "New Line Networks",
    "Webline Holdings",
    "Jefferson Microwave",
    "Pierce Broadband",
    "National Tower Company",
    "Midwest Relay Partners",
)

_ENGINES: dict[int, CorridorEngine] = {}


def _shared_engine(scenario) -> CorridorEngine:
    """One engine per scenario, shared across hypothesis examples."""
    key = id(scenario)
    if key not in _ENGINES:
        _ENGINES[key] = CorridorEngine(scenario.database, scenario.corridor)
    return _ENGINES[key]


# ----------------------------------------------------------------------
# Property: cached == cache-free
# ----------------------------------------------------------------------


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    licensee=st.sampled_from(_LICENSEES),
    on_date=st.dates(dt.date(2012, 1, 1), dt.date(2020, 12, 31)),
)
def test_snapshot_equals_fresh_reconstruction(scenario, licensee, on_date):
    engine = _shared_engine(scenario)
    cached = engine.snapshot(licensee, on_date)
    fresh = NetworkReconstructor(scenario.corridor).reconstruct_licensee(
        scenario.database, licensee, on_date
    )
    assert cached.licensee == fresh.licensee
    assert cached.as_of == on_date == fresh.as_of
    assert cached.towers == fresh.towers
    assert list(cached.links) == list(fresh.links)
    assert list(cached.fiber_tails) == list(fresh.fiber_tails)

    cached_route = engine.route(licensee, on_date, "CME", "NY4")
    fresh_route = fresh.lowest_latency_route("CME", "NY4")
    if fresh_route is None:
        assert cached_route is None
    else:
        assert cached_route is not None
        assert cached_route.latency_ms == fresh_route.latency_ms
        assert cached_route.tower_count == fresh_route.tower_count


_PARAM_VALUES = st.fixed_dictionaries(
    {
        "stitch_tolerance_m": st.sampled_from([10.0, 30.0, 100.0]),
        "max_fiber_tail_m": st.sampled_from([10_000.0, 50_000.0]),
        "fiber_mode": st.sampled_from(["nearest", "all"]),
        "overhead_us": st.sampled_from([0.0, 1.4]),
    }
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(params_a=_PARAM_VALUES, params_b=_PARAM_VALUES)
def test_cache_keys_separate_parameterisations(scenario, params_a, params_b):
    """Snapshot keys are equal iff every reconstruction param is equal."""

    def build(params):
        return CorridorEngine(
            scenario.database,
            scenario.corridor,
            stitch_tolerance_m=params["stitch_tolerance_m"],
            max_fiber_tail_m=params["max_fiber_tail_m"],
            fiber_mode=params["fiber_mode"],
            latency_model=LatencyModel(
                per_tower_overhead_s=params["overhead_us"] * 1e-6
            ),
        )

    key_a = build(params_a).snapshot_key("New Line Networks", dt.date(2020, 4, 1))
    key_b = build(params_b).snapshot_key("New Line Networks", dt.date(2020, 4, 1))
    assert (key_a == key_b) == (params_a == params_b)


# ----------------------------------------------------------------------
# Cache behaviour
# ----------------------------------------------------------------------


def test_snapshot_cache_hits_by_active_fingerprint(scenario):
    engine = CorridorEngine(scenario.database, scenario.corridor)
    first = engine.snapshot("New Line Networks", dt.date(2020, 4, 1))
    assert engine.stats.snapshot.misses == 1
    # A nearby date with the identical active set shares the snapshot...
    assert engine.active_fingerprint(
        "New Line Networks", dt.date(2020, 4, 1)
    ) == engine.active_fingerprint("New Line Networks", dt.date(2020, 4, 2))
    second = engine.snapshot("New Line Networks", dt.date(2020, 4, 2))
    assert engine.stats.snapshot.hits == 1
    assert engine.stats.snapshot.misses == 1
    # ...but still reports the date it was asked for.
    assert first.as_of == dt.date(2020, 4, 1)
    assert second.as_of == dt.date(2020, 4, 2)
    assert second.towers == first.towers

    # A date with a different active set misses.
    engine.snapshot("New Line Networks", dt.date(2016, 1, 1))
    assert engine.stats.snapshot.misses == 2


def test_external_license_sets_never_alias_database_snapshots(scenario):
    """snapshot_from_licenses only shares slots for verbatim rows.

    A scraped record set (coordinates perturbed by the portal's DMS
    round-trip) must not overwrite the database-derived snapshot under
    the ids-only fingerprint — that would leak its floats into every
    later snapshot()/rankings result (the serve-tier parity bug).
    """
    import dataclasses

    engine = CorridorEngine(scenario.database, scenario.corridor)
    date = dt.date(2020, 4, 1)
    records = scenario.database.licenses_for("New Line Networks")

    # Verbatim database rows share the ids-only slot with snapshot().
    via_records = engine.snapshot_from_licenses(records, date)
    assert engine.stats.snapshot.misses == 1
    baseline = engine.snapshot("New Line Networks", date)
    assert engine.stats.snapshot.hits == 1
    assert baseline.towers == via_records.towers

    # Nudge one tower by 1e-9 deg — the scale of the scraper's DMS
    # precision loss.  Same license ids, different content.
    def perturb(lic):
        number, location = min(lic.locations.items())
        moved = dataclasses.replace(
            location,
            point=GeoPoint(
                location.point.latitude + 1e-9, location.point.longitude
            ),
        )
        return dataclasses.replace(
            lic, locations={**lic.locations, number: moved}
        )

    target = next(lic for lic in records if lic.is_active(date))
    perturbed = [
        perturb(lic) if lic is target else lic for lic in records
    ]
    via_perturbed = engine.snapshot_from_licenses(perturbed, date)
    assert engine.stats.snapshot.misses == 2  # content-digested key: cold
    assert via_perturbed.towers != baseline.towers

    # The database-derived snapshot survives untouched, and the
    # perturbed set reuses its own digested slot on a second call.
    assert engine.snapshot("New Line Networks", date).towers == baseline.towers
    engine.snapshot_from_licenses(perturbed, date)
    assert engine.stats.snapshot.misses == 2


def test_route_cache_and_none_routes(scenario):
    engine = CorridorEngine(scenario.database, scenario.corridor)
    date = dt.date(2020, 4, 1)
    route = engine.route("New Line Networks", date, "CME", "NY4")
    again = engine.route("New Line Networks", date, "CME", "NY4")
    assert route is again
    assert engine.stats.route.hits == 1

    # "No route" is cached too (Pierce Broadband predates 2019).
    assert engine.route("Pierce Broadband", dt.date(2015, 1, 1), "CME", "NY4") is None
    misses = engine.stats.route.misses
    assert engine.route("Pierce Broadband", dt.date(2015, 1, 1), "CME", "NY4") is None
    assert engine.stats.route.misses == misses


def test_snapshot_cache_eviction(scenario):
    engine = CorridorEngine(
        scenario.database, scenario.corridor, snapshot_cache_size=1
    )
    engine.snapshot("New Line Networks", dt.date(2020, 4, 1))
    engine.snapshot("Webline Holdings", dt.date(2020, 4, 1))  # evicts NLN
    assert engine.stats.snapshot.evictions == 1
    assert engine.stats.snapshot.size == 1
    engine.snapshot("New Line Networks", dt.date(2020, 4, 1))  # miss again
    assert engine.stats.snapshot.misses == 3


def test_clear_caches_preserves_counters(scenario):
    engine = CorridorEngine(scenario.database, scenario.corridor)
    engine.route("New Line Networks", dt.date(2020, 4, 1), "CME", "NY4")
    engine.clear_caches()
    stats = engine.stats
    assert isinstance(stats, CacheStats)
    assert stats.snapshot.size == stats.route.size == stats.geodesic.size == 0
    assert stats.snapshot.misses == 1  # lifetime counters survive


def test_with_params_builds_distinct_engine(scenario):
    engine = CorridorEngine(scenario.database, scenario.corridor)
    sibling = engine.with_params(fiber_mode="all")
    assert sibling.params_key != engine.params_key
    assert sibling.database is engine.database
    with pytest.raises(TypeError):
        engine.with_params(not_a_param=1)


def test_timeline_matches_routes(scenario):
    engine = CorridorEngine(scenario.database, scenario.corridor)
    dates = [dt.date(2015, 1, 1), dt.date(2020, 4, 1)]
    points = engine.timeline("Pierce Broadband", dates)
    assert [p.date for p in points] == dates
    assert points[0].latency_ms is None and points[0].tower_count is None
    assert points[1].latency_ms == engine.route(
        "Pierce Broadband", dates[1], "CME", "NY4"
    ).latency_ms


# ----------------------------------------------------------------------
# Constructor validation + consumer plumbing (the satellite fixes)
# ----------------------------------------------------------------------


def test_engine_rejects_conflicting_construction(scenario):
    kernel = NetworkReconstructor(scenario.corridor, fiber_mode="all")
    with pytest.raises(ValueError):
        CorridorEngine(scenario.database, reconstructor=kernel, fiber_mode="all")
    with pytest.raises(ValueError):
        CorridorEngine(
            scenario.database, london_frankfurt_corridor(), reconstructor=kernel
        )
    with pytest.raises(ValueError):
        CorridorEngine(scenario.database)
    # Wrapping a kernel adopts its corridor and parameters.
    engine = CorridorEngine(scenario.database, reconstructor=kernel)
    assert engine.corridor == scenario.corridor
    assert engine.params_key[2] == "all"


def test_reconstruct_all_honours_reconstructor():
    database = UlsDatabase()
    database.extend([make_license()])
    corridor = chicago_nj_corridor()
    model = LatencyModel(per_tower_overhead_s=2e-6)
    custom = NetworkReconstructor(corridor, latency_model=model)

    networks = reconstruct_all(
        database, corridor, dt.date(2020, 4, 1), reconstructor=custom
    )
    assert networks["Test Networks LLC"].latency_model == model

    with pytest.raises(ValueError):
        reconstruct_all(
            database,
            corridor,
            dt.date(2020, 4, 1),
            latency_model=model,
            reconstructor=custom,
        )
    with pytest.raises(ValueError):
        reconstruct_all(
            database,
            london_frankfurt_corridor(),
            dt.date(2020, 4, 1),
            reconstructor=custom,
        )


def test_latency_timeline_validates_corridor(scenario):
    dates = [dt.date(2020, 4, 1)]
    mismatched = NetworkReconstructor(london_frankfurt_corridor())
    with pytest.raises(ValueError):
        latency_timeline(
            scenario.database,
            scenario.corridor,
            "New Line Networks",
            dates,
            reconstructor=mismatched,
        )
    engine = CorridorEngine(scenario.database, london_frankfurt_corridor())
    with pytest.raises(ValueError):
        latency_timeline(
            scenario.database,
            scenario.corridor,
            "New Line Networks",
            dates,
            engine=engine,
        )
    good = CorridorEngine(scenario.database, scenario.corridor)
    with pytest.raises(ValueError):
        latency_timeline(
            scenario.database,
            scenario.corridor,
            "New Line Networks",
            dates,
            engine=good,
            reconstructor=NetworkReconstructor(scenario.corridor),
        )
    points = latency_timeline(
        scenario.database, scenario.corridor, "New Line Networks", dates, engine=good
    )
    assert points[0].latency_ms == pytest.approx(3.96171, abs=5e-5)


# ----------------------------------------------------------------------
# Geodesic memo
# ----------------------------------------------------------------------


def test_geodesic_memo_is_opt_in_and_exact():
    a = GeoPoint(41.8, -87.6)
    b = GeoPoint(40.7, -74.0)
    bare = geodesic_inverse(a, b)

    memo = GeodesicMemo(maxsize=16)
    assert active_memo() is None
    with use_memo(memo):
        assert active_memo() is memo
        first = geodesic_inverse(a, b)
        second = geodesic_inverse(a, b)
    assert active_memo() is None
    assert first == second == bare  # bit-identical, not approximately equal
    assert memo.hits == 1 and memo.misses == 1


def test_geodesic_memo_nesting_restores_previous():
    outer, inner = GeodesicMemo(), GeodesicMemo()
    with use_memo(outer):
        with use_memo(inner):
            assert active_memo() is inner
        assert active_memo() is outer
    assert active_memo() is None


def test_geodesic_memo_eviction_bound():
    memo = GeodesicMemo(maxsize=4)
    origin = GeoPoint(41.8, -87.6)
    with use_memo(memo):
        for i in range(10):
            geodesic_inverse(origin, GeoPoint(40.0 + i * 0.01, -74.0))
    assert len(memo) == 4
    assert memo.evictions == 6
