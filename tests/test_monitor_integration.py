"""Tests for the corridor diff monitor, plus end-to-end integration and
property tests over the transaction layer."""

from __future__ import annotations

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.monitor import diff_corridor
from repro.analysis.tables import table1_connected_networks
from repro.core.reconstruction import NetworkReconstructor
from repro.metrics.rankings import rank_connected_networks
from repro.uls.database import UlsDatabase
from repro.uls.dumpio import read_uls_dump, write_uls_dump
from repro.uls.transactions import (
    apply_transactions,
    snapshot_database,
    transactions_between,
)
from tests.conftest import make_license


class TestCorridorDiff:
    @pytest.fixture(scope="class")
    def diff_2015_2016(self, scenario, engine):
        return diff_corridor(
            scenario.database,
            scenario.corridor,
            dt.date(2015, 1, 1),
            dt.date(2016, 1, 1),
            licensees=list(scenario.featured_names),
            engine=engine,
        )

    def test_nln_newly_connected_in_2015(self, diff_2015_2016):
        assert "New Line Networks" in diff_2015_2016.newly_connected

    def test_event_counts_positive(self, diff_2015_2016):
        assert diff_2015_2016.grants > 0
        assert diff_2015_2016.cancellations >= 0

    def test_improvers_move_down(self, scenario, engine):
        diff = diff_corridor(
            scenario.database,
            scenario.corridor,
            dt.date(2017, 1, 1),
            dt.date(2018, 1, 1),
            licensees=["Webline Holdings", "New Line Networks"],
            engine=engine,
        )
        movers = {c.licensee: c for c in diff.movers}
        assert movers["New Line Networks"].kind == "improved"
        assert movers["New Line Networks"].delta_us < -1.0

    def test_ntc_disconnects_during_wind_down(self, scenario, engine):
        diff = diff_corridor(
            scenario.database,
            scenario.corridor,
            dt.date(2016, 1, 1),
            dt.date(2018, 1, 1),
            licensees=["National Tower Company"],
            engine=engine,
        )
        assert "National Tower Company" in diff.newly_disconnected

    def test_pb_appears_as_new_licensee(self, scenario, engine):
        diff = diff_corridor(
            scenario.database,
            scenario.corridor,
            dt.date(2019, 1, 1),
            scenario.snapshot_date,
            licensees=["Pierce Broadband"],
            engine=engine,
        )
        assert "Pierce Broadband" in diff.new_licensees
        assert "Pierce Broadband" in diff.newly_connected


class TestEndToEndViaDumpFiles:
    def test_dump_roundtrip_preserves_table1(self, scenario, tmp_path):
        """Write the whole scenario to a ULS dump on disk, read it back,
        and reproduce Table 1 bit-for-bit (to 5 decimals of ms)."""
        path = tmp_path / "corridor.uls"
        write_uls_dump(iter(scenario.database), path)
        reread = UlsDatabase(read_uls_dump(path))
        assert len(reread) == len(scenario.database)
        original = [
            (r.licensee, round(r.latency_ms, 5), r.apa_percent, r.tower_count)
            for r in table1_connected_networks(scenario)
        ]
        replayed = [
            (r.licensee, round(r.latency_ms, 5), r.apa_percent, r.tower_count)
            for r in rank_connected_networks(
                reread, scenario.corridor, scenario.snapshot_date
            )
        ]
        assert replayed == original

    def test_snapshot_plus_log_preserves_table1(self, scenario):
        base = snapshot_database(scenario.database, dt.date(2016, 1, 1))
        log = transactions_between(
            scenario.database, dt.date(2016, 1, 1), scenario.snapshot_date
        )
        apply_transactions(base, log)
        replayed = [
            (r.licensee, round(r.latency_ms, 5))
            for r in rank_connected_networks(
                base, scenario.corridor, scenario.snapshot_date
            )
        ]
        original = [
            (r.licensee, round(r.latency_ms, 5))
            for r in table1_connected_networks(scenario)
        ]
        assert replayed == original


@st.composite
def license_histories(draw):
    """A small random licensee history (grants and optional endings)."""
    n = draw(st.integers(2, 12))
    licenses = []
    for index in range(n):
        grant = dt.date(2012, 1, 1) + dt.timedelta(days=draw(st.integers(0, 2500)))
        ending = draw(st.sampled_from(["none", "cancel", "terminate"]))
        kwargs = {}
        if ending == "cancel":
            kwargs["cancellation"] = grant + dt.timedelta(
                days=draw(st.integers(1, 2000))
            )
        elif ending == "terminate":
            kwargs["termination"] = grant + dt.timedelta(
                days=draw(st.integers(1, 2000))
            )
        licenses.append(make_license(f"R{index:03d}", grant=grant, **kwargs))
    return licenses


class TestTransactionProperties:
    @given(license_histories(), st.integers(0, 2600), st.integers(1, 1200))
    @settings(max_examples=40, deadline=None)
    def test_snapshot_plus_log_invariant(self, licenses, offset, span):
        """snapshot(t0) + transactions(t0, t1] has the same active set as
        the ground truth at every probe date ≤ t1."""
        database = UlsDatabase(licenses)
        t0 = dt.date(2012, 1, 1) + dt.timedelta(days=offset)
        t1 = t0 + dt.timedelta(days=span)
        replayed = apply_transactions(
            snapshot_database(database, t0), transactions_between(database, t0, t1)
        )
        for probe_days in (0, span // 2, span):
            probe = t0 + dt.timedelta(days=probe_days)
            expected = {
                lic.license_id for lic in database.active_on(probe)
            }
            actual = {lic.license_id for lic in replayed.active_on(probe)}
            assert actual == expected, probe
