"""Tests for FCC coordinate format handling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geodesy import GeoPoint, format_dms, parse_dms, parse_uls_coordinate
from repro.geodesy.coordinates import coordinate_key


class TestParseDms:
    def test_basic_north(self):
        assert parse_dms("41-44-34.6 N") == pytest.approx(41.742944, abs=1e-6)

    def test_west_is_negative(self):
        assert parse_dms("88-14-22.0 W") == pytest.approx(-88.239444, abs=1e-6)

    def test_south_is_negative(self):
        assert parse_dms("10-30-00.0 S") == pytest.approx(-10.5)

    def test_degree_symbol_separators(self):
        assert parse_dms("41°44'34.6\" N") == pytest.approx(41.742944, abs=1e-6)

    def test_lowercase_hemisphere(self):
        assert parse_dms("41-44-34.6 n") == pytest.approx(41.742944, abs=1e-6)

    @pytest.mark.parametrize(
        "bad",
        ["", "garbage", "41-44 N", "41-61-00.0 N", "41-44-60.0 N", "95-00-00.0 N"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_dms(bad)


class TestFormatDms:
    def test_formats_latitude(self):
        assert format_dms(41.742944, "lat") == "41-44-34.6 N"

    def test_formats_negative_longitude(self):
        assert format_dms(-88.239444, "lon") == "88-14-22.0 W"

    def test_carry_on_rounding(self):
        # 59.96" rounds to 60.0" and must carry into minutes.
        text = format_dms(10.0 + 59.0 / 60.0 + 59.96 / 3600.0, "lat")
        assert text == "11-00-00.0 N"

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            format_dms(10.0, "alt")

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_dms(100.0, "lat")

    @given(st.floats(min_value=-89.999, max_value=89.999))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_within_precision(self, value):
        text = format_dms(value, "lat", seconds_decimals=4)
        back = parse_dms(text)
        # 1e-4 arc-second is ~3 mm.
        assert back == pytest.approx(value, abs=1e-7)


class TestUlsCoordinate:
    def test_string_fields(self):
        value = parse_uls_coordinate("41", "44", "34.6", "N")
        assert value == pytest.approx(41.742944, abs=1e-6)

    def test_west(self):
        assert parse_uls_coordinate(88, 14, 22.0, "w") < 0

    def test_rejects_negative_components(self):
        with pytest.raises(ValueError):
            parse_uls_coordinate(-1, 0, 0.0, "N")

    def test_rejects_bad_hemisphere(self):
        with pytest.raises(ValueError):
            parse_uls_coordinate(41, 44, 34.6, "Q")

    def test_rejects_out_of_range_minutes(self):
        with pytest.raises(ValueError):
            parse_uls_coordinate(41, 60, 0.0, "N")


class TestCoordinateKey:
    def test_nearby_points_share_a_neighbourhood(self):
        a = GeoPoint(41.750000, -88.180000)
        b = GeoPoint(41.750010, -88.180010)  # ~1.5 m away
        ka, kb = coordinate_key(a, 30.0), coordinate_key(b, 30.0)
        assert abs(ka[0] - kb[0]) <= 1 and abs(ka[1] - kb[1]) <= 1

    def test_distant_points_differ(self):
        a = GeoPoint(41.75, -88.18)
        b = GeoPoint(41.85, -88.18)  # ~11 km away
        assert coordinate_key(a, 30.0) != coordinate_key(b, 30.0)

    def test_requires_positive_tolerance(self):
        with pytest.raises(ValueError):
            coordinate_key(GeoPoint(0.0, 0.0), 0.0)
