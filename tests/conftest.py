"""Shared fixtures.

The ``paper2020`` scenario build calibrates ~30 chains by bisection
(~1 s); it is cached per process, so the session-scoped fixtures here are
cheap for every test after the first.  Everything expensive downstream of
the scenario is also session-scoped and routed through the scenario's
*default* :class:`~repro.core.engine.CorridorEngine` — snapshots computed
for one test file warm the cache for every other (the CLI's commands use
the same process-cached scenario, so even ``main(...)`` calls share it).
The §2.2 scraping funnel (~3 s: it really scrapes ~3 000 portal pages)
runs once per session via ``funnel_result``.
"""

from __future__ import annotations

import datetime as dt

import pytest

from repro.analysis.funnel import run_scraping_funnel
from repro.core.corridor import chicago_nj_corridor
from repro.core.reconstruction import NetworkReconstructor
from repro.geodesy import GeoPoint
from repro.synth.scenario import paper2020_scenario
from repro.uls.records import License, MicrowavePath, TowerLocation


@pytest.fixture(scope="session")
def scenario():
    return paper2020_scenario()


@pytest.fixture(scope="session")
def corridor():
    return chicago_nj_corridor()


@pytest.fixture(scope="session")
def reconstructor(corridor):
    return NetworkReconstructor(corridor)


@pytest.fixture(scope="session")
def snapshot_date(scenario):
    return scenario.snapshot_date


@pytest.fixture(scope="session")
def engine(scenario):
    """The scenario's shared default engine (snapshot/route caches)."""
    return scenario.engine()


@pytest.fixture(scope="session")
def funnel_result(scenario, engine):
    """One §2.2 funnel replay at the snapshot date, shared session-wide."""
    return run_scraping_funnel(
        scenario.database,
        scenario.corridor,
        scenario.snapshot_date,
        engine=engine,
    )


@pytest.fixture(scope="session")
def nln_network(engine, snapshot_date):
    return engine.snapshot("New Line Networks", snapshot_date)


@pytest.fixture(scope="session")
def wh_network(engine, snapshot_date):
    return engine.snapshot("Webline Holdings", snapshot_date)


@pytest.fixture(scope="session")
def serve_service(scenario, engine):
    """One warm query service over the session's shared engine."""
    from repro.serve import CorridorQueryService

    return CorridorQueryService(scenario=scenario, engine=engine)


@pytest.fixture(scope="session")
def serve_server(serve_service):
    """A live threaded HTTP server on an ephemeral localhost port."""
    from repro.serve import CorridorServer

    with CorridorServer(serve_service) as server:
        yield server


def make_license(
    license_id: str = "L0001",
    licensee: str = "Test Networks LLC",
    points: tuple[tuple[float, float], ...] = ((41.75, -88.18), (41.60, -87.80)),
    grant: dt.date = dt.date(2015, 3, 1),
    cancellation: dt.date | None = None,
    termination: dt.date | None = None,
    frequencies: tuple[float, ...] = (11225.0,),
    radio_service: str = "MG",
    station_class: str = "FXO",
) -> License:
    """A small single-path (chain) license for unit tests.

    ``points`` lists tower coordinates; consecutive points become paths
    from a single transmitter chain (location i -> i+1).
    """
    locations = {
        index + 1: TowerLocation(
            location_number=index + 1,
            point=GeoPoint(lat, lon),
            ground_elevation_m=200.0,
            structure_height_m=90.0,
        )
        for index, (lat, lon) in enumerate(points)
    }
    paths = [
        MicrowavePath(
            path_number=index + 1,
            tx_location_number=index + 1,
            rx_location_number=index + 2,
            frequencies_mhz=frequencies,
        )
        for index in range(len(points) - 1)
    ]
    return License(
        license_id=license_id,
        callsign=f"WQ{license_id}",
        licensee_name=licensee,
        radio_service_code=radio_service,
        station_class=station_class,
        grant_date=grant,
        expiration_date=grant + dt.timedelta(days=3650) if grant else None,
        cancellation_date=cancellation,
        termination_date=termination,
        locations=locations,
        paths=paths,
    )
