"""Shared fixtures.

The ``paper2020`` scenario build calibrates ~30 chains by bisection
(~1 s); it is cached per process, so the session-scoped fixtures here are
cheap for every test after the first.
"""

from __future__ import annotations

import datetime as dt

import pytest

from repro.core.corridor import chicago_nj_corridor
from repro.core.reconstruction import NetworkReconstructor
from repro.geodesy import GeoPoint
from repro.synth.scenario import paper2020_scenario
from repro.uls.records import License, MicrowavePath, TowerLocation


@pytest.fixture(scope="session")
def scenario():
    return paper2020_scenario()


@pytest.fixture(scope="session")
def corridor():
    return chicago_nj_corridor()


@pytest.fixture(scope="session")
def reconstructor(corridor):
    return NetworkReconstructor(corridor)


@pytest.fixture(scope="session")
def snapshot_date(scenario):
    return scenario.snapshot_date


@pytest.fixture(scope="session")
def nln_network(scenario, reconstructor, snapshot_date):
    return reconstructor.reconstruct_licensee(
        scenario.database, "New Line Networks", snapshot_date
    )


@pytest.fixture(scope="session")
def wh_network(scenario, reconstructor, snapshot_date):
    return reconstructor.reconstruct_licensee(
        scenario.database, "Webline Holdings", snapshot_date
    )


def make_license(
    license_id: str = "L0001",
    licensee: str = "Test Networks LLC",
    points: tuple[tuple[float, float], ...] = ((41.75, -88.18), (41.60, -87.80)),
    grant: dt.date = dt.date(2015, 3, 1),
    cancellation: dt.date | None = None,
    termination: dt.date | None = None,
    frequencies: tuple[float, ...] = (11225.0,),
    radio_service: str = "MG",
    station_class: str = "FXO",
) -> License:
    """A small single-path (chain) license for unit tests.

    ``points`` lists tower coordinates; consecutive points become paths
    from a single transmitter chain (location i -> i+1).
    """
    locations = {
        index + 1: TowerLocation(
            location_number=index + 1,
            point=GeoPoint(lat, lon),
            ground_elevation_m=200.0,
            structure_height_m=90.0,
        )
        for index, (lat, lon) in enumerate(points)
    }
    paths = [
        MicrowavePath(
            path_number=index + 1,
            tx_location_number=index + 1,
            rx_location_number=index + 2,
            frequencies_mhz=frequencies,
        )
        for index in range(len(points) - 1)
    ]
    return License(
        license_id=license_id,
        callsign=f"WQ{license_id}",
        licensee_name=licensee,
        radio_service_code=radio_service,
        station_class=station_class,
        grant_date=grant,
        expiration_date=grant + dt.timedelta(days=3650) if grant else None,
        cancellation_date=cancellation,
        termination_date=termination,
        locations=locations,
        paths=paths,
    )
