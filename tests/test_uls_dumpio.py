"""Round-trip and robustness tests for the ULS dump format."""

from __future__ import annotations

import datetime as dt
import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geodesy import GeoPoint
from repro.uls import dumpio
from repro.uls.records import License, MicrowavePath, TowerLocation
from tests.conftest import make_license


class TestRoundTrip:
    def test_single_license(self):
        lic = make_license(
            grant=dt.date(2015, 3, 1), cancellation=dt.date(2019, 9, 30)
        )
        (back,) = dumpio.loads(dumpio.dumps([lic]))
        assert back.license_id == lic.license_id
        assert back.licensee_name == lic.licensee_name
        assert back.grant_date == lic.grant_date
        assert back.cancellation_date == lic.cancellation_date
        assert back.paths == lic.paths
        for number in lic.locations:
            original = lic.locations[number].point
            parsed = back.locations[number].point
            assert parsed.latitude == pytest.approx(original.latitude, abs=1e-7)
            assert parsed.longitude == pytest.approx(original.longitude, abs=1e-7)

    def test_multiple_licenses_preserve_order(self):
        lics = [make_license(f"L{i}") for i in range(5)]
        back = dumpio.loads(dumpio.dumps(lics))
        assert [lic.license_id for lic in back] == [f"L{i}" for i in range(5)]

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "dump.dat"
        dumpio.write_uls_dump([make_license()], path)
        assert len(dumpio.read_uls_dump(path)) == 1

    def test_stream_roundtrip(self):
        buffer = io.StringIO()
        dumpio.write_uls_dump([make_license()], buffer)
        buffer.seek(0)
        assert len(dumpio.read_uls_dump(buffer)) == 1

    def test_multi_receiver_license(self):
        lic = License(
            license_id="L1",
            callsign="W1",
            licensee_name="X",
            grant_date=dt.date(2015, 1, 1),
            locations={
                1: TowerLocation(1, GeoPoint(41.0, -88.0)),
                2: TowerLocation(2, GeoPoint(41.2, -87.8)),
                3: TowerLocation(3, GeoPoint(40.8, -87.8)),
            },
            paths=[
                MicrowavePath(1, 1, 2, (10995.0,)),
                MicrowavePath(2, 1, 3, (11485.0, 6063.8)),
            ],
        )
        (back,) = dumpio.loads(dumpio.dumps([lic]))
        assert len(back.paths) == 2
        assert back.paths[1].frequencies_mhz == (11485.0, 6063.8)


class TestErrors:
    def test_rejects_pipe_in_field(self):
        lic = make_license(licensee="Evil|Pipes Inc")
        with pytest.raises(dumpio.DumpFormatError):
            dumpio.dumps([lic])

    def test_rejects_record_before_header(self):
        with pytest.raises(dumpio.DumpFormatError, match="before any HD"):
            dumpio.loads("EN|L1|Someone\n")

    def test_rejects_unknown_record_type(self):
        text = dumpio.dumps([make_license()]) + "ZZ|L0001|x\n"
        with pytest.raises(dumpio.DumpFormatError, match="unknown record"):
            dumpio.loads(text)

    def test_rejects_wrong_field_count(self):
        with pytest.raises(dumpio.DumpFormatError, match="HD needs 9"):
            dumpio.loads("HD|L1|W1\n")

    def test_rejects_foreign_license_record(self):
        lines = dumpio.dumps([make_license("L1")]).splitlines()
        lines.insert(2, "PA|OTHER|1|1|2")
        with pytest.raises(dumpio.DumpFormatError):
            dumpio.loads("\n".join(lines) + "\n")

    def test_rejects_bad_frequency(self):
        text = dumpio.dumps([make_license("L1")]) + "FR|L0001|1|-5.0\n"
        # FR for the finished license group: 'L0001' doesn't match... use
        # an in-group malformed frequency instead.
        lic = make_license("L2", frequencies=(11225.0,))
        good = dumpio.dumps([lic])
        bad = good.replace("11225.0", "nan")
        with pytest.raises((dumpio.DumpFormatError, ValueError)):
            dumpio.loads(bad)

    def test_blank_lines_ignored(self):
        text = "\n" + dumpio.dumps([make_license()]) + "\n\n"
        assert len(dumpio.loads(text)) == 1


@st.composite
def licenses(draw):
    index = draw(st.integers(0, 999))
    n_points = draw(st.integers(2, 4))
    points = []
    for point_index in range(n_points):
        lat = draw(st.floats(min_value=-80.0, max_value=80.0))
        lon = draw(st.floats(min_value=-179.0, max_value=179.0))
        points.append((round(lat, 5), round(lon, 5)))
    freqs = tuple(
        sorted(
            draw(
                st.lists(
                    st.sampled_from([5945.2, 6063.8, 10995.0, 11485.0, 17765.0]),
                    min_size=1,
                    max_size=3,
                    unique=True,
                )
            )
        )
    )
    return make_license(
        f"H{index:03d}",
        points=tuple(points),
        frequencies=freqs,
        grant=dt.date(2010 + index % 10, 1 + index % 12, 1 + index % 28),
    )


class TestPropertyRoundTrip:
    @given(licenses())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_preserves_structure(self, lic):
        (back,) = dumpio.loads(dumpio.dumps([lic]))
        assert back.license_id == lic.license_id
        assert len(back.locations) == len(lic.locations)
        assert [p.frequencies_mhz for p in back.paths] == [
            p.frequencies_mhz for p in lic.paths
        ]
        for number, location in lic.locations.items():
            parsed = back.locations[number].point
            assert parsed.latitude == pytest.approx(location.point.latitude, abs=2e-7)
            assert parsed.longitude == pytest.approx(location.point.longitude, abs=2e-7)
