"""The load harness: seeded mixes, percentile maths, live reports."""

from __future__ import annotations

import pytest

from repro.serve.loadgen import (
    DEFAULT_PATHS,
    LoadProfile,
    percentile,
    request_sequence,
    run_load,
)


class TestRequestSequence:
    def test_seeded_and_reproducible(self):
        profile = LoadProfile(requests=50, seed=7)
        assert request_sequence(profile) == request_sequence(profile)

    def test_different_seed_different_mix(self):
        base = LoadProfile(requests=50, seed=7)
        other = LoadProfile(requests=50, seed=8)
        assert request_sequence(base) != request_sequence(other)

    def test_draws_from_profile_paths(self):
        profile = LoadProfile(requests=200, paths=("/a", "/b"), seed=1)
        assert set(request_sequence(profile)) == {"/a", "/b"}

    def test_default_mix_covers_every_endpoint(self):
        endpoints = {path.split("?")[0] for path in DEFAULT_PATHS}
        assert endpoints == {"/rankings", "/apa", "/timeline", "/search", "/map"}


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 51.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 100.0

    def test_singleton(self):
        assert percentile([42.0], 0.99) == 42.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)


class TestRunLoad:
    def test_load_against_live_server(self, serve_server):
        profile = LoadProfile(requests=20, clients=2, seed=3)
        report = run_load(serve_server.url, profile)
        assert report.requests == 20
        assert report.clients == 2
        assert report.errors == 0
        assert report.qps > 0
        assert 0 < report.p50_ms <= report.p99_ms
        assert "20 requests" in report.describe()

    def test_non_200_counts_as_error(self, serve_server):
        profile = LoadProfile(
            requests=10, clients=1, paths=("/healthz", "/nope"), seed=5
        )
        expected_errors = sum(
            1 for path in request_sequence(profile) if path == "/nope"
        )
        report = run_load(serve_server.url, profile)
        assert report.errors == expected_errors > 0
