"""Per-rule fixture snippets: each rule catches its known violations and
stays quiet on the idioms the codebase actually uses."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint import LintConfig, instantiate, lint_file


def findings_for(
    tmp_path: Path,
    source: str,
    *,
    name: str = "mod.py",
    rules: tuple[str, ...] | None = None,
    rule_options: dict | None = None,
) -> list:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    config = LintConfig(
        root=tmp_path,
        enabled=rules,
        rule_options=rule_options or {},
    )
    return lint_file(path, instantiate(rules), config)


def rule_names(findings) -> list[str]:
    return [finding.rule for finding in findings]


class TestHashSeed:
    def test_hash_seed_in_random_flagged(self, tmp_path):
        source = """
            import random
            rng = random.Random(hash(name) % 10_000)
        """
        assert rule_names(findings_for(tmp_path, source, rules=("hash-seed",))) == [
            "hash-seed"
        ]

    def test_hash_seed_keyword_argument_flagged(self, tmp_path):
        source = """
            import random
            rng = random.Random(x=hash(name))
        """
        assert rule_names(findings_for(tmp_path, source, rules=("hash-seed",))) == [
            "hash-seed"
        ]

    def test_hash_in_seed_call_flagged(self, tmp_path):
        source = """
            rng.seed(hash(key))
        """
        assert rule_names(findings_for(tmp_path, source, rules=("hash-seed",))) == [
            "hash-seed"
        ]

    def test_stable_digest_seed_ok(self, tmp_path):
        source = """
            import random
            import zlib
            rng = random.Random(zlib.crc32(name.encode()) % 10_000)
        """
        assert findings_for(tmp_path, source, rules=("hash-seed",)) == []

    def test_hash_outside_seeding_ok(self, tmp_path):
        source = """
            key = hash((a, b))
        """
        assert findings_for(tmp_path, source, rules=("hash-seed",)) == []


class TestUnseededRng:
    def test_module_level_random_flagged(self, tmp_path):
        source = """
            import random
            x = random.random()
            y = random.randint(1, 6)
            random.shuffle(items)
        """
        assert rule_names(
            findings_for(tmp_path, source, rules=("unseeded-rng",))
        ) == ["unseeded-rng"] * 3

    def test_unseeded_random_instance_flagged(self, tmp_path):
        source = """
            import random
            rng = random.Random()
        """
        assert rule_names(
            findings_for(tmp_path, source, rules=("unseeded-rng",))
        ) == ["unseeded-rng"]

    def test_seeded_instance_ok(self, tmp_path):
        source = """
            import random
            rng = random.Random(42)
            x = rng.random()
            rng.shuffle(items)
        """
        assert findings_for(tmp_path, source, rules=("unseeded-rng",)) == []


class TestWallClock:
    def test_now_and_today_flagged(self, tmp_path):
        source = """
            import datetime as dt
            a = dt.datetime.now()
            b = dt.date.today()
        """
        assert rule_names(
            findings_for(tmp_path, source, rules=("wall-clock",))
        ) == ["wall-clock"] * 2

    def test_time_time_flagged(self, tmp_path):
        source = """
            import time
            t = time.time()
        """
        assert rule_names(
            findings_for(tmp_path, source, rules=("wall-clock",))
        ) == ["wall-clock"]

    def test_explicit_dates_ok(self, tmp_path):
        source = """
            import datetime as dt
            snapshot = dt.date(2020, 4, 1)
            parsed = dt.date.fromisoformat("2020-04-01")
        """
        assert findings_for(tmp_path, source, rules=("wall-clock",)) == []

    def test_process_timers_flagged_outside_obs_paths(self, tmp_path):
        source = """
            import time
            a = time.perf_counter()
            b = time.perf_counter_ns()
            c = time.monotonic_ns()
        """
        assert rule_names(
            findings_for(tmp_path, source, rules=("wall-clock",))
        ) == ["wall-clock"] * 3

    def test_process_timers_exempt_inside_obs_allowed_paths(self, tmp_path):
        source = """
            import time
            started = time.perf_counter_ns()
        """
        assert (
            findings_for(
                tmp_path,
                source,
                name="src/repro/obs/spans.py",
                rules=("wall-clock",),
                rule_options={
                    "obs-discipline": {"allowed": ["src/repro/obs/"]}
                },
            )
            == []
        )

    def test_absolute_clock_not_exempt_inside_obs_paths(self, tmp_path):
        source = """
            import time
            t = time.time()
        """
        assert rule_names(
            findings_for(
                tmp_path,
                source,
                name="src/repro/obs/spans.py",
                rules=("wall-clock",),
                rule_options={
                    "obs-discipline": {"allowed": ["src/repro/obs/"]}
                },
            )
        ) == ["wall-clock"]


class TestCacheDiscipline:
    OPTIONS = {"cache-discipline": {"allowed": ["allowed/engine.py"]}}

    def test_kernel_construction_flagged_outside_allowed(self, tmp_path):
        source = """
            from repro.core.reconstruction import NetworkReconstructor
            kernel = NetworkReconstructor(corridor)
        """
        findings = findings_for(
            tmp_path, source,
            rules=("cache-discipline",), rule_options=self.OPTIONS,
        )
        assert rule_names(findings) == ["cache-discipline"]
        assert "CorridorEngine" in findings[0].message

    def test_reconstruct_all_call_flagged(self, tmp_path):
        source = """
            from repro.core import reconstruct_all
            networks = reconstruct_all(database, corridor, date)
        """
        assert rule_names(
            findings_for(
                tmp_path, source,
                rules=("cache-discipline",), rule_options=self.OPTIONS,
            )
        ) == ["cache-discipline"]

    def test_allowed_file_is_exempt(self, tmp_path):
        source = """
            kernel = NetworkReconstructor(corridor)
        """
        assert findings_for(
            tmp_path, source, name="allowed/engine.py",
            rules=("cache-discipline",), rule_options=self.OPTIONS,
        ) == []

    def test_annotation_reference_ok(self, tmp_path):
        source = """
            from __future__ import annotations
            from repro.core.reconstruction import NetworkReconstructor

            def f(reconstructor: NetworkReconstructor | None = None) -> None:
                pass
        """
        assert findings_for(
            tmp_path, source,
            rules=("cache-discipline",), rule_options=self.OPTIONS,
        ) == []


class TestActiveOnDiscipline:
    """active_on(...) is confined to the uls layer and the engine."""

    OPTIONS = {
        "cache-discipline": {
            "allowed": ["allowed/engine.py"],
            "active_on_allowed": ["src/repro/uls/", "src/repro/core/engine.py"],
        }
    }

    def test_active_on_flagged_outside_allowed(self, tmp_path):
        source = """
            def count(db, date):
                return len(db.active_on(date))
        """
        findings = findings_for(
            tmp_path, source, name="src/repro/analysis/driver.py",
            rules=("cache-discipline",), rule_options=self.OPTIONS,
        )
        assert rule_names(findings) == ["cache-discipline"]
        assert "temporal_index" in findings[0].message

    def test_active_on_allowed_under_uls(self, tmp_path):
        source = """
            def count(db, date):
                return len(db.active_on(date))
        """
        assert findings_for(
            tmp_path, source, name="src/repro/uls/database.py",
            rules=("cache-discipline",), rule_options=self.OPTIONS,
        ) == []

    def test_active_on_allowed_in_engine(self, tmp_path):
        source = """
            def fingerprint(db, date):
                return frozenset(l.license_id for l in db.active_on(date))
        """
        assert findings_for(
            tmp_path, source, name="src/repro/core/engine.py",
            rules=("cache-discipline",), rule_options=self.OPTIONS,
        ) == []

    def test_attribute_reference_without_call_ok(self, tmp_path):
        source = """
            def probe(db):
                return db.active_on  # bound method, not a scan
        """
        assert findings_for(
            tmp_path, source, name="src/repro/analysis/driver.py",
            rules=("cache-discipline",), rule_options=self.OPTIONS,
        ) == []

    def test_temporal_index_lookup_ok(self, tmp_path):
        source = """
            def count(db, date):
                return db.temporal_index().active_count_at(date)
        """
        assert findings_for(
            tmp_path, source, name="src/repro/analysis/driver.py",
            rules=("cache-discipline",), rule_options=self.OPTIONS,
        ) == []

    def test_default_prefixes_apply_without_options(self, tmp_path):
        source = """
            def count(db, date):
                return len(db.active_on(date))
        """
        findings = findings_for(
            tmp_path, source, name="src/repro/metrics/thing.py",
            rules=("cache-discipline",),
        )
        assert rule_names(findings) == ["cache-discipline"]


class TestColumnarStoreDiscipline:
    """ColumnarLicenseStore(...) is confined to the uls layer and engine."""

    OPTIONS = {
        "cache-discipline": {
            "allowed": ["allowed/engine.py"],
            "columnar_allowed": ["src/repro/uls/", "src/repro/core/engine.py"],
        }
    }

    def test_store_construction_flagged_outside_allowed(self, tmp_path):
        source = """
            from repro.uls import ColumnarLicenseStore

            def fast_path(db):
                return ColumnarLicenseStore({"X": db.licenses_for("X")})
        """
        findings = findings_for(
            tmp_path, source, name="src/repro/analysis/driver.py",
            rules=("cache-discipline",), rule_options=self.OPTIONS,
        )
        assert rule_names(findings) == ["cache-discipline"]
        assert "columnar_store()" in findings[0].message

    def test_store_construction_allowed_under_uls(self, tmp_path):
        source = """
            def build(groups, generation):
                return ColumnarLicenseStore(groups, generation=generation)
        """
        assert findings_for(
            tmp_path, source, name="src/repro/uls/database.py",
            rules=("cache-discipline",), rule_options=self.OPTIONS,
        ) == []

    def test_store_construction_allowed_in_engine(self, tmp_path):
        source = """
            def ephemeral(licensee, license_list):
                return ColumnarLicenseStore({licensee: license_list})
        """
        assert findings_for(
            tmp_path, source, name="src/repro/core/engine.py",
            rules=("cache-discipline",), rule_options=self.OPTIONS,
        ) == []

    def test_cached_accessor_ok_anywhere(self, tmp_path):
        source = """
            def fast_path(db):
                return db.columnar_store()
        """
        assert findings_for(
            tmp_path, source, name="src/repro/analysis/driver.py",
            rules=("cache-discipline",), rule_options=self.OPTIONS,
        ) == []


class TestPersistentStoreDiscipline:
    """Raw store-layout access is confined to src/repro/store/."""

    OPTIONS = {
        "cache-discipline": {
            "allowed": ["allowed/engine.py"],
            "store_allowed": ["src/repro/store/"],
        }
    }

    def test_write_entry_flagged_outside_store_package(self, tmp_path):
        source = """
            from repro.store.layout import write_entry

            def publish(cache_dir, fingerprint, payload):
                return write_entry(cache_dir, fingerprint, payload)
        """
        findings = findings_for(
            tmp_path, source, name="src/repro/analysis/driver.py",
            rules=("cache-discipline",), rule_options=self.OPTIONS,
        )
        assert rule_names(findings) == ["cache-discipline"]
        assert "CacheStore" in findings[0].message

    def test_read_and_quarantine_flagged_outside_store_package(self, tmp_path):
        source = """
            def peek(cache_dir, fingerprint):
                data = read_entry(cache_dir, fingerprint)
                if data is None:
                    quarantine_entry(cache_dir, fingerprint)
                return data
        """
        assert rule_names(
            findings_for(
                tmp_path, source, name="src/repro/serve/service.py",
                rules=("cache-discipline",), rule_options=self.OPTIONS,
            )
        ) == ["cache-discipline"] * 2

    def test_layout_calls_allowed_under_store_package(self, tmp_path):
        source = """
            def load(cache_dir, fingerprint):
                data = read_entry(cache_dir, fingerprint)
                if data is None:
                    quarantine_entry(cache_dir, fingerprint)
                return data
        """
        assert findings_for(
            tmp_path, source, name="src/repro/store/cachestore.py",
            rules=("cache-discipline",), rule_options=self.OPTIONS,
        ) == []

    def test_cachestore_api_ok_anywhere(self, tmp_path):
        source = """
            from repro.store import CacheStore

            def warm(engine, cache_dir):
                store = CacheStore(cache_dir)
                store.load_into(engine)
                return store.save_from(engine)
        """
        assert findings_for(
            tmp_path, source, name="src/repro/analysis/driver.py",
            rules=("cache-discipline",), rule_options=self.OPTIONS,
        ) == []

    def test_attribute_reference_without_call_ok(self, tmp_path):
        source = """
            from repro.store import layout

            def probe():
                return layout.write_entry  # reference, not a write
        """
        assert findings_for(
            tmp_path, source, name="src/repro/analysis/driver.py",
            rules=("cache-discipline",), rule_options=self.OPTIONS,
        ) == []

    def test_default_prefixes_apply_without_options(self, tmp_path):
        source = """
            def publish(cache_dir, fingerprint, payload):
                return write_entry(cache_dir, fingerprint, payload)
        """
        assert rule_names(
            findings_for(
                tmp_path, source, name="src/repro/metrics/thing.py",
                rules=("cache-discipline",),
            )
        ) == ["cache-discipline"]

    def test_default_prefixes_apply_without_options(self, tmp_path):
        source = """
            store = ColumnarLicenseStore(groups)
        """
        findings = findings_for(
            tmp_path, source, name="src/repro/metrics/thing.py",
            rules=("cache-discipline",),
        )
        assert rule_names(findings) == ["cache-discipline"]


class TestFloatEq:
    OPTIONS = {"float-eq": {"paths": ["numeric/"]}}

    def test_float_literal_equality_flagged_in_scope(self, tmp_path):
        source = """
            if distance == 0.0:
                pass
            if 1.5 != ratio:
                pass
        """
        assert rule_names(
            findings_for(
                tmp_path, source, name="numeric/kernel.py",
                rules=("float-eq",), rule_options=self.OPTIONS,
            )
        ) == ["float-eq"] * 2

    def test_negative_literal_flagged(self, tmp_path):
        source = """
            if offset == -1.0:
                pass
        """
        assert rule_names(
            findings_for(
                tmp_path, source, name="numeric/kernel.py",
                rules=("float-eq",), rule_options=self.OPTIONS,
            )
        ) == ["float-eq"]

    def test_out_of_scope_file_ignored(self, tmp_path):
        source = """
            if distance == 0.0:
                pass
        """
        assert findings_for(
            tmp_path, source, name="other/driver.py",
            rules=("float-eq",), rule_options=self.OPTIONS,
        ) == []

    def test_ordering_comparisons_and_int_literals_ok(self, tmp_path):
        source = """
            if distance < 0.0 or count == 0 or distance >= 1.5:
                pass
        """
        assert findings_for(
            tmp_path, source, name="numeric/kernel.py",
            rules=("float-eq",), rule_options=self.OPTIONS,
        ) == []


class TestHygiene:
    def test_mutable_defaults_flagged(self, tmp_path):
        source = """
            def f(items=[], table={}, tags=set()):
                pass
        """
        assert rule_names(
            findings_for(tmp_path, source, rules=("mutable-default",))
        ) == ["mutable-default"] * 3

    def test_none_default_ok(self, tmp_path):
        source = """
            def f(items=None, name="x", count=0, point=(1, 2)):
                pass
        """
        assert findings_for(tmp_path, source, rules=("mutable-default",)) == []

    def test_constructor_defaults_flagged(self, tmp_path):
        source = """
            def f(items=list(), table=dict(), tags=set()):
                pass
        """
        assert rule_names(
            findings_for(tmp_path, source, rules=("mutable-default",))
        ) == ["mutable-default"] * 3

    def test_dotted_constructor_defaults_flagged(self, tmp_path):
        source = """
            import collections

            def f(
                table=collections.defaultdict(list),
                queue=collections.deque(),
                counts=collections.Counter(),
            ):
                pass
        """
        assert rule_names(
            findings_for(tmp_path, source, rules=("mutable-default",))
        ) == ["mutable-default"] * 3

    def test_immutable_constructor_defaults_ok(self, tmp_path):
        source = """
            import decimal

            def f(zero=decimal.Decimal(0), empty=tuple(), label=str()):
                pass
        """
        assert findings_for(tmp_path, source, rules=("mutable-default",)) == []

    def test_bare_and_broad_except_flagged(self, tmp_path):
        source = """
            try:
                work()
            except:
                pass
            try:
                work()
            except Exception:
                pass
        """
        assert rule_names(
            findings_for(tmp_path, source, rules=("broad-except",))
        ) == ["broad-except"] * 2

    def test_specific_except_ok(self, tmp_path):
        source = """
            try:
                work()
            except (ValueError, KeyError) as error:
                raise RuntimeError("context") from error
        """
        assert findings_for(tmp_path, source, rules=("broad-except",)) == []


class TestUnitSuffix:
    def test_additive_mix_flagged(self, tmp_path):
        source = """
            total = trunk_km + tail_m
        """
        findings = findings_for(tmp_path, source, rules=("unit-suffix",))
        assert rule_names(findings) == ["unit-suffix"]
        assert "'_km'" in findings[0].message and "'_m'" in findings[0].message

    def test_comparison_mix_flagged(self, tmp_path):
        source = """
            if overhead_us > budget_ms:
                pass
        """
        assert rule_names(
            findings_for(tmp_path, source, rules=("unit-suffix",))
        ) == ["unit-suffix"]

    def test_augmented_assignment_mix_flagged(self, tmp_path):
        source = """
            length_m += extension_km
        """
        assert rule_names(
            findings_for(tmp_path, source, rules=("unit-suffix",))
        ) == ["unit-suffix"]

    def test_same_unit_and_cross_dimension_ok(self, tmp_path):
        source = """
            total_m = trunk_m + tail_m
            rate = distance_km + 5.0
            weird = latency_ms + distance_km  # different dimensions: allowed
        """
        assert findings_for(tmp_path, source, rules=("unit-suffix",)) == []

    def test_conversion_via_division_ok(self, tmp_path):
        source = """
            geodesic_km = corridor.geodesic_m(a, b) / 1000.0
            total_km = geodesic_km + bypass_km
        """
        assert findings_for(tmp_path, source, rules=("unit-suffix",)) == []

    def test_call_results_carry_units(self, tmp_path):
        source = """
            stretch = corridor.geodesic_m(a, b) - route.length_km
        """
        assert rule_names(
            findings_for(tmp_path, source, rules=("unit-suffix",))
        ) == ["unit-suffix"]

    def test_ms_not_mistaken_for_s(self, tmp_path):
        source = """
            total_ms = latency_ms + overhead_ms
        """
        assert findings_for(tmp_path, source, rules=("unit-suffix",)) == []


class TestObsDiscipline:
    def test_monotonic_timing_flagged(self, tmp_path):
        source = """
            import time
            start = time.monotonic()
            elapsed = time.monotonic() - start
        """
        findings = findings_for(tmp_path, source, rules=("obs-discipline",))
        assert rule_names(findings) == ["obs-discipline", "obs-discipline"]
        assert "obs.span" in findings[0].message

    def test_perf_counter_ns_flagged(self, tmp_path):
        source = """
            import time
            t0 = time.perf_counter_ns()
        """
        assert rule_names(
            findings_for(tmp_path, source, rules=("obs-discipline",))
        ) == ["obs-discipline"]

    def test_obs_package_is_exempt(self, tmp_path):
        source = """
            import time
            t0 = time.perf_counter_ns()
        """
        assert findings_for(
            tmp_path, source, name="src/repro/obs/spans.py",
            rules=("obs-discipline",),
        ) == []

    def test_benchmarks_are_exempt(self, tmp_path):
        source = """
            import time
            t0 = time.monotonic()
        """
        assert findings_for(
            tmp_path, source, name="benchmarks/test_bench_obs.py",
            rules=("obs-discipline",),
        ) == []

    def test_allowed_paths_overridable(self, tmp_path):
        source = """
            import time
            t0 = time.perf_counter()
        """
        assert findings_for(
            tmp_path, source, name="tools/profiler.py",
            rules=("obs-discipline",),
            rule_options={"obs-discipline": {"allowed": ["tools/"]}},
        ) == []

    def test_span_timing_ok(self, tmp_path):
        source = """
            from repro import obs

            with obs.span("engine.snapshot", licensee=name):
                network = build()
        """
        assert findings_for(tmp_path, source, rules=("obs-discipline",)) == []

    def test_pragma_suppresses(self, tmp_path):
        source = """
            import time
            t0 = time.monotonic()  # lint: disable=obs-discipline
        """
        assert findings_for(tmp_path, source, rules=("obs-discipline",)) == []


class TestParallelDiscipline:
    def test_process_pool_executor_flagged(self, tmp_path):
        source = """
            from concurrent.futures import ProcessPoolExecutor
            pool = ProcessPoolExecutor(max_workers=4)
        """
        findings = findings_for(
            tmp_path, source, rules=("parallel-discipline",)
        )
        assert rule_names(findings) == ["parallel-discipline"]
        assert "repro.parallel" in findings[0].message

    def test_dotted_pool_constructors_flagged(self, tmp_path):
        source = """
            import concurrent.futures
            import multiprocessing

            a = concurrent.futures.ProcessPoolExecutor()
            b = concurrent.futures.ThreadPoolExecutor()
            c = multiprocessing.Pool(4)
            d = multiprocessing.Process(target=work)
        """
        assert rule_names(
            findings_for(tmp_path, source, rules=("parallel-discipline",))
        ) == ["parallel-discipline"] * 4

    def test_os_fork_flagged(self, tmp_path):
        source = """
            import os
            pid = os.fork()
        """
        assert rule_names(
            findings_for(tmp_path, source, rules=("parallel-discipline",))
        ) == ["parallel-discipline"]

    def test_bare_pool_name_not_flagged(self, tmp_path):
        source = """
            pool = Pool(candidates)
            worker = Process(step)
        """
        assert findings_for(
            tmp_path, source, rules=("parallel-discipline",)
        ) == []

    def test_parallel_package_is_exempt(self, tmp_path):
        source = """
            from concurrent.futures import ProcessPoolExecutor
            pool = ProcessPoolExecutor(max_workers=4)
        """
        assert findings_for(
            tmp_path, source, name="src/repro/parallel/executor.py",
            rules=("parallel-discipline",),
        ) == []

    def test_allowed_paths_configurable(self, tmp_path):
        source = """
            import multiprocessing
            pool = multiprocessing.Pool()
        """
        assert findings_for(
            tmp_path, source, name="tools/runner.py",
            rules=("parallel-discipline",),
            rule_options={"parallel-discipline": {"allowed": ["tools/"]}},
        ) == []

    def test_pmap_usage_ok(self, tmp_path):
        source = """
            from repro.parallel import pmap
            results = pmap(work, items, jobs=4)
        """
        assert findings_for(
            tmp_path, source, rules=("parallel-discipline",)
        ) == []

    def test_pragma_suppresses_parallel(self, tmp_path):
        source = """
            import multiprocessing
            pool = multiprocessing.Pool()  # lint: disable=parallel-discipline
        """
        assert findings_for(
            tmp_path, source, rules=("parallel-discipline",)
        ) == []
