"""Tests for the HftNetwork graph model."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.core.corridor import DataCenterSite
from repro.core.latency import LatencyModel
from repro.core.network import (
    FiberTail,
    HftNetwork,
    MicrowaveLink,
    Tower,
)
from repro.geodesy import GeoPoint, geodesic_distance

AS_OF = dt.date(2020, 4, 1)


def _simple_network(per_tower_overhead_s: float = 0.0) -> HftNetwork:
    """CME -fiber- t1 -mw- t2 -mw- t3 -fiber- NY4, plus a bypass of t2."""
    west = DataCenterSite("CME", GeoPoint(41.70, -88.00))
    east = DataCenterSite("NY4", GeoPoint(41.70, -86.80))
    t1 = Tower("t1", GeoPoint(41.70, -87.99))
    t2 = Tower("t2", GeoPoint(41.70, -87.40))
    t3 = Tower("t3", GeoPoint(41.70, -86.81))
    bypass = Tower("b1", GeoPoint(41.74, -87.40))

    def link(a: Tower, b: Tower, freqs=(10995.0,)) -> MicrowaveLink:
        return MicrowaveLink(
            a.tower_id,
            b.tower_id,
            geodesic_distance(a.point, b.point),
            frequencies_mhz=freqs,
        )

    return HftNetwork(
        licensee="Demo",
        as_of=AS_OF,
        towers=[t1, t2, t3, bypass],
        links=[
            link(t1, t2),
            link(t2, t3),
            link(t1, bypass, freqs=(6063.8,)),
            link(bypass, t3, freqs=(6063.8,)),
        ],
        fiber_tails=[
            FiberTail("CME", "t1", geodesic_distance(west.point, t1.point)),
            FiberTail("NY4", "t3", geodesic_distance(east.point, t3.point)),
        ],
        data_centers=[west, east],
        latency_model=LatencyModel(per_tower_overhead_s=per_tower_overhead_s),
    )


class TestValidation:
    def test_link_needs_known_towers(self):
        with pytest.raises(ValueError, match="unknown tower"):
            HftNetwork(
                "X",
                AS_OF,
                towers=[Tower("t1", GeoPoint(0.0, 0.0))],
                links=[MicrowaveLink("t1", "t9", 1000.0)],
                fiber_tails=[],
                data_centers=[DataCenterSite("CME", GeoPoint(0.1, 0.1))],
            )

    def test_fiber_tail_needs_known_endpoints(self):
        with pytest.raises(ValueError, match="unknown data center"):
            HftNetwork(
                "X",
                AS_OF,
                towers=[Tower("t1", GeoPoint(0.0, 0.0))],
                links=[],
                fiber_tails=[FiberTail("NOPE", "t1", 1000.0)],
                data_centers=[DataCenterSite("CME", GeoPoint(0.1, 0.1))],
            )

    def test_tower_id_cannot_shadow_data_center(self):
        with pytest.raises(ValueError, match="collide"):
            HftNetwork(
                "X",
                AS_OF,
                towers=[Tower("CME", GeoPoint(0.0, 0.0))],
                links=[],
                fiber_tails=[],
                data_centers=[DataCenterSite("CME", GeoPoint(0.1, 0.1))],
            )

    def test_link_validation(self):
        with pytest.raises(ValueError):
            MicrowaveLink("a", "a", 1000.0)
        with pytest.raises(ValueError):
            MicrowaveLink("a", "b", 0.0)
        with pytest.raises(ValueError):
            FiberTail("CME", "t1", -1.0)


class TestRouting:
    def test_route_prefers_direct_chain_over_bypass(self):
        network = _simple_network()
        route = network.lowest_latency_route("CME", "NY4")
        assert route is not None
        assert route.nodes == ("CME", "t1", "t2", "t3", "NY4")

    def test_route_accounting(self):
        network = _simple_network()
        route = network.lowest_latency_route("CME", "NY4")
        assert route.length_m == pytest.approx(
            route.microwave_length_m + route.fiber_length_m
        )
        assert route.tower_count == 3
        assert route.hop_count == 4
        # Latency decomposes into medium-specific propagation.
        model = network.latency_model
        expected = model.microwave_latency_s(
            route.microwave_length_m
        ) + model.fiber_latency_s(route.fiber_length_m)
        assert route.latency_s == pytest.approx(expected, rel=1e-12)

    def test_latency_ms_property(self):
        route = _simple_network().lowest_latency_route("CME", "NY4")
        assert route.latency_ms == pytest.approx(route.latency_s * 1e3)

    def test_no_route_returns_none(self):
        network = _simple_network()
        network.fiber_tails = [t for t in network.fiber_tails if t.data_center != "NY4"]
        network.__dict__.pop("graph", None)  # drop cached graph if built
        assert network.lowest_latency_route("CME", "NY4") is None
        assert not network.is_connected("CME", "NY4")

    def test_unknown_endpoint_is_unconnected(self):
        network = _simple_network()
        assert not network.is_connected("CME", "MARS")
        assert network.lowest_latency_route("CME", "MARS") is None

    def test_per_tower_overhead_charged_once_per_tower(self):
        base = _simple_network().lowest_latency_route("CME", "NY4")
        loaded_network = _simple_network(per_tower_overhead_s=1e-6)
        loaded = loaded_network.lowest_latency_route("CME", "NY4")
        assert loaded.latency_s - base.latency_s == pytest.approx(3e-6, rel=1e-9)

    def test_overhead_can_flip_route_choice(self):
        # The 2-tower direct chain beats the bypass normally; with a large
        # per-tower overhead the bypass (1 intermediate tower fewer on
        # this geometry: t1->b1->t3 = 2 towers + t1 = 3 vs 3) stays equal,
        # so instead verify the route latency grows monotonically.
        fast = _simple_network(per_tower_overhead_s=0.0)
        slow = _simple_network(per_tower_overhead_s=5e-6)
        assert (
            slow.lowest_latency_route("CME", "NY4").latency_s
            > fast.lowest_latency_route("CME", "NY4").latency_s
        )

    def test_route_frequencies(self):
        network = _simple_network()
        route = network.lowest_latency_route("CME", "NY4")
        freqs = network.route_frequencies_mhz(route)
        assert freqs == [(10995.0,), (10995.0,)]


class TestSummaries:
    def test_counts(self):
        network = _simple_network()
        assert network.tower_count == 4
        assert network.link_count == 4

    def test_link_lengths(self):
        lengths = _simple_network().link_lengths_m()
        assert len(lengths) == 4
        assert all(length > 0 for length in lengths)

    def test_with_latency_model_returns_equivalent_copy(self):
        network = _simple_network()
        slower = network.with_latency_model(LatencyModel(per_tower_overhead_s=1e-6))
        assert slower.licensee == network.licensee
        assert slower.lowest_latency_route("CME", "NY4").latency_s > (
            network.lowest_latency_route("CME", "NY4").latency_s
        )
