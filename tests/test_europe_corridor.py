"""Corridor-agnosticism: the tooling on the London–Frankfurt corridor.

The paper's measurement is US-only (the FCC ULS has no European
counterpart), but the library is corridor-agnostic: these tests build a
synthetic LD4–FR2 scenario and run the full pipeline against it.  Also
holds the regression test for the bypass-shortcut bug this corridor
exposed (bypass towers on the j→j+2 chord can undercut a high-jitter
trunk).
"""

from __future__ import annotations

import datetime as dt

import pytest

from repro.core.corridor import london_frankfurt_corridor
from repro.core.reconstruction import NetworkReconstructor
from repro.metrics.apa import apa_percent
from repro.metrics.rankings import rank_connected_networks
from repro.synth.generator import build_network_licenses
from repro.synth.scenario import europe2020_scenario
from repro.synth.specs import FrequencyProfile, NetworkSpec


@pytest.fixture(scope="module")
def europe():
    return europe2020_scenario()


class TestCorridor:
    def test_geodesic(self, europe):
        assert europe.corridor.geodesic_m("LD4", "FR2") / 1000.0 == pytest.approx(
            671.3, abs=0.5
        )

    def test_paths(self, europe):
        assert europe.corridor.paths == (("LD4", "FR2"),)


class TestEuropeScenario:
    def test_rankings_match_targets(self, europe):
        rankings = rank_connected_networks(
            europe.database, europe.corridor, europe.snapshot_date,
            source="LD4", target="FR2",
        )
        assert [r.licensee for r in rankings] == [
            "Channel Wave Networks",
            "Rhine Crossing Comm",
            "Lowland Relay",
        ]
        latencies = {r.licensee: r.latency_ms for r in rankings}
        assert latencies["Channel Wave Networks"] == pytest.approx(2.2460, abs=5e-5)
        assert latencies["Rhine Crossing Comm"] == pytest.approx(2.2488, abs=5e-5)
        assert latencies["Lowland Relay"] == pytest.approx(2.2710, abs=5e-5)

    def test_apa_from_coverage_masks(self, europe):
        rankings = {
            r.licensee: r.apa_percent
            for r in rank_connected_networks(
                europe.database, europe.corridor, europe.snapshot_date,
                source="LD4", target="FR2",
            )
        }
        assert rankings["Channel Wave Networks"] == 31  # 4/13
        assert rankings["Rhine Crossing Comm"] == 50  # 8/16
        assert rankings["Lowland Relay"] == 0

    def test_history_era(self, europe):
        reconstructor = NetworkReconstructor(europe.corridor)
        old = reconstructor.reconstruct_licensee(
            europe.database, "Channel Wave Networks", dt.date(2016, 1, 1)
        )
        route = old.lowest_latency_route("LD4", "FR2")
        assert route.latency_ms == pytest.approx(2.2600, abs=5e-5)

    def test_no_chicago_names_leak(self, europe):
        with pytest.raises(KeyError):
            europe.corridor.site("CME")


class TestBypassShortcutRegression:
    def test_high_jitter_trunk_not_shortcut_by_bypasses(self):
        """With the target far above the geodesic the trunk carries heavy
        lateral jitter; bypasses must still not undercut it."""
        corridor = london_frankfurt_corridor()
        spec = NetworkSpec(
            name="Jittery Net",
            callsign_prefix="GBJN",
            seed=77,
            trunk_links=12,
            ny4_target_ms=2.2800,  # ~+12 km of jitter over the geodesic
            frequency_profile=FrequencyProfile(trunk_bands=(("11GHz", 1.0),)),
            trunk_bypass_covered=(1, 2, 4, 5, 7, 8, 10),
            gateway_west_km=0.7,
            gateway_east_km=0.6,
        )
        licenses = build_network_licenses(spec, corridor)
        network = NetworkReconstructor(corridor).reconstruct(
            licenses, dt.date(2020, 4, 1)
        )
        route = network.lowest_latency_route("LD4", "FR2")
        # The calibrated target is hit exactly: no bypass stole the path.
        assert route.latency_ms == pytest.approx(2.2800, abs=5e-5)
        assert route.tower_count == 13
        # And the bypasses still work as alternates.
        assert apa_percent(network, "LD4", "FR2") == round(100 * 7 / 12)
