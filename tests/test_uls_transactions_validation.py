"""Tests for transaction logs and data validation."""

from __future__ import annotations

import datetime as dt
import io

import pytest

from repro.geodesy import GeoPoint
from repro.uls.database import UlsDatabase, UnknownLicenseError
from repro.uls.dumpio import DumpFormatError
from repro.uls.records import License, MicrowavePath, TowerLocation
from repro.uls.transactions import (
    Transaction,
    apply_transactions,
    read_transaction_log,
    snapshot_database,
    transactions_between,
    write_transaction_log,
)
from repro.uls.validation import (
    clean_licenses,
    partition_by_severity,
    validate_license,
    validate_licenses,
)
from tests.conftest import make_license

T0 = dt.date(2015, 1, 1)
T1 = dt.date(2017, 1, 1)
T2 = dt.date(2019, 1, 1)


@pytest.fixture()
def history_db():
    return UlsDatabase(
        [
            make_license("A", grant=dt.date(2014, 5, 1)),
            make_license("B", grant=dt.date(2015, 6, 1)),
            make_license("C", grant=dt.date(2016, 2, 1), cancellation=dt.date(2018, 3, 1)),
            make_license("D", grant=dt.date(2018, 7, 1)),
            make_license("E", grant=dt.date(2014, 8, 1), termination=dt.date(2016, 9, 1)),
        ]
    )


class TestTransactionModel:
    def test_grant_requires_record(self):
        with pytest.raises(ValueError):
            Transaction(T0, "grant", "X")

    def test_non_grant_rejects_record(self):
        with pytest.raises(ValueError):
            Transaction(T0, "cancel", "X", license=make_license("X"))

    def test_unknown_action(self):
        with pytest.raises(ValueError):
            Transaction(T0, "renew", "X")


class TestDerivationAndReplay:
    def test_log_window_contents(self, history_db):
        log = transactions_between(history_db, T0, T1)
        events = [(tx.action, tx.license_id) for tx in log]
        assert ("grant", "B") in events
        assert ("grant", "C") in events
        assert ("terminate", "E") in events
        assert ("grant", "A") not in events  # before the window
        assert ("grant", "D") not in events  # after the window
        assert ("cancel", "C") not in events  # cancellation after window

    def test_log_is_sorted(self, history_db):
        log = transactions_between(history_db, T0, T2)
        keys = [(tx.date, tx.license_id) for tx in log]
        assert keys == sorted(keys)

    def test_invariant_snapshot_plus_log_equals_snapshot(self, history_db):
        """snapshot(t0) + transactions(t0, t1] ≡ snapshot(t1)."""
        base = snapshot_database(history_db, T0)
        log = transactions_between(history_db, T0, T2)
        replayed = apply_transactions(base, log)
        target = snapshot_database(history_db, T2)
        for probe in (T0, dt.date(2016, 6, 1), dt.date(2018, 6, 1), T2):
            replayed_ids = {lic.license_id for lic in replayed.active_on(probe)}
            target_ids = {lic.license_id for lic in target.active_on(probe)}
            assert replayed_ids == target_ids, probe

    def test_grant_is_idempotent(self, history_db):
        base = snapshot_database(history_db, T2)
        log = transactions_between(history_db, T0, T2)
        apply_transactions(base, log)  # everything already present
        assert len(base) == len(snapshot_database(history_db, T2))

    def test_cancel_unknown_license_raises(self):
        with pytest.raises(UnknownLicenseError):
            apply_transactions(UlsDatabase(), [Transaction(T0, "cancel", "ghost")])

    def test_window_validation(self, history_db):
        with pytest.raises(ValueError):
            transactions_between(history_db, T1, T1)


class TestLogSerialisation:
    def test_roundtrip(self, history_db):
        log = transactions_between(history_db, T0, T2)
        buffer = io.StringIO()
        write_transaction_log(log, buffer)
        buffer.seek(0)
        back = read_transaction_log(buffer)
        assert [(tx.date, tx.action, tx.license_id) for tx in back] == [
            (tx.date, tx.action, tx.license_id) for tx in log
        ]
        grants = [tx for tx in back if tx.action == "grant"]
        assert all(tx.license is not None for tx in grants)

    def test_file_roundtrip(self, history_db, tmp_path):
        log = transactions_between(history_db, T0, T1)
        path = tmp_path / "updates.tx"
        write_transaction_log(log, path)
        assert len(read_transaction_log(path)) == len(log)

    def test_rejects_mismatched_embedded_record(self, history_db):
        log = transactions_between(history_db, T0, T1)
        buffer = io.StringIO()
        write_transaction_log(log, buffer)
        tampered = buffer.getvalue().replace("TX|2015-06-01|grant|B", "TX|2015-06-01|grant|Z")
        with pytest.raises(DumpFormatError):
            read_transaction_log(io.StringIO(tampered))

    def test_rejects_orphan_dump_lines(self):
        with pytest.raises(DumpFormatError):
            read_transaction_log(io.StringIO("HD|X|W|MG|FXO|||||\n"))


class TestValidation:
    def test_clean_license_passes(self):
        assert validate_license(make_license()) == []

    def test_scenario_data_is_clean(self, scenario):
        errors, _ = partition_by_severity(validate_licenses(iter(scenario.database)))
        assert errors == []

    def test_hop_too_long(self):
        lic = make_license(points=((41.75, -88.18), (41.75, -80.0)))  # ~680 km
        codes = {issue.code for issue in validate_license(lic)}
        assert "hop-too-long" in codes

    def test_degenerate_hop(self):
        lic = make_license(points=((41.75, -88.18), (41.7500001, -88.18)))
        codes = {issue.code for issue in validate_license(lic)}
        assert "hop-degenerate" in codes

    def test_date_order(self):
        lic = make_license(
            grant=dt.date(2018, 1, 1), cancellation=dt.date(2016, 1, 1)
        )
        issues = validate_license(lic)
        assert any(i.code == "date-order" and i.severity == "error" for i in issues)

    def test_out_of_band_frequency(self):
        lic = make_license(frequencies=(450.0,))
        codes = {issue.code for issue in validate_license(lic)}
        assert "frequency-out-of-band" in codes

    def test_orphan_location(self):
        lic = License(
            license_id="L1",
            callsign="W1",
            licensee_name="X",
            grant_date=dt.date(2015, 1, 1),
            locations={
                1: TowerLocation(1, GeoPoint(41.0, -88.0)),
                2: TowerLocation(2, GeoPoint(41.2, -87.8)),
                3: TowerLocation(3, GeoPoint(40.8, -87.7)),
            },
            paths=[MicrowavePath(1, 1, 2, (10995.0,))],
        )
        codes = {issue.code for issue in validate_license(lic)}
        assert "location-orphan" in codes

    def test_clean_licenses_drops_errors_keeps_warnings(self):
        good = make_license("G")
        warned = make_license(
            "W", points=((41.75, -88.18), (41.7500001, -88.18))
        )
        broken = make_license("B", points=((41.75, -88.18), (41.75, -80.0)))
        kept = clean_licenses([good, warned, broken])
        assert [lic.license_id for lic in kept] == ["G", "W"]
