"""Tests for grid fan-out sessions and the cache merge-back contract.

The core promise under test: a parallel grid run returns exactly the
results a serial run would, and leaves the parent
:class:`~repro.core.engine.CorridorEngine` in the same warm cache state —
identical geodesic-memo contents and equivalent
:class:`~repro.core.engine.CacheStats` totals.  Process-backend tests
force ``backend="process"`` (auto resolves to inline on one-CPU hosts).
"""

from __future__ import annotations

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import CorridorEngine
from repro.parallel import GridSession, grid_session

FEATURED = (
    "National Tower Company",
    "Webline Holdings",
    "Jefferson Microwave",
    "Pierce Broadband",
    "New Line Networks",
)

DATES = (dt.date(2016, 1, 1), dt.date(2019, 1, 1))


# -- module-level task functions (picklable for the process backend) ----

def _latency_series(ctx, item):
    name, dates = item
    return tuple(
        point.latency_ms for point in ctx.engine.timeline(name, dates)
    )


def _worker_id_task(ctx, item):
    return ctx.worker


def _count_filings(ctx, item):
    return len(ctx.scraper.licenses_of(item))


def _fresh_engine(scenario) -> CorridorEngine:
    """A cold default-params engine (never the scenario's shared one)."""
    return CorridorEngine(scenario.database, scenario.corridor)


def _memo_contents(engine: CorridorEngine) -> dict:
    return dict(engine._geodesic_memo.entries())


class TestEngineCacheTransplant:
    def test_export_seed_roundtrip_serves_hits(self, scenario):
        warm = _fresh_engine(scenario)
        warm.snapshot("Webline Holdings", DATES[1])
        cold = _fresh_engine(scenario)
        cold.seed_cache_state(warm.export_cache_state())
        # Seeding is an install, not a lookup: no counters moved.
        assert cold.stats.snapshot.lookups == 0
        assert cold.stats.geodesic.lookups == 0
        # The seeded snapshot is served from cache.
        network = cold.snapshot("Webline Holdings", DATES[1])
        assert cold.stats.snapshot.hits == 1
        assert cold.stats.snapshot.misses == 0
        assert network is warm.snapshot("Webline Holdings", DATES[1])

    def test_seed_rejects_mismatched_params(self, scenario):
        warm = _fresh_engine(scenario)
        warm.snapshot("Webline Holdings", DATES[1])
        sibling = warm.with_params(stitch_tolerance_m=120.0)
        with pytest.raises(ValueError):
            sibling.seed_cache_state(warm.export_cache_state())

    def test_geodesic_only_seed_crosses_parameterisations(self, scenario):
        warm = _fresh_engine(scenario)
        warm.snapshot("Webline Holdings", DATES[1])
        sibling = warm.with_params(stitch_tolerance_m=120.0)
        sibling.seed_cache_state(
            warm.export_cache_state(geodesic_only=True), geodesic_only=True
        )
        assert _memo_contents(sibling) == _memo_contents(warm)
        assert len(sibling._snapshots) == 0

    def test_delta_reports_only_new_entries_and_activity(self, scenario):
        engine = _fresh_engine(scenario)
        engine.snapshot("Webline Holdings", DATES[1])
        baseline = engine.cache_baseline()
        empty = engine.collect_cache_delta(baseline)
        assert not (empty.snapshots or empty.routes or empty.geodesic)
        assert empty.stats.snapshot.lookups == 0

        engine.snapshot("Webline Holdings", DATES[1])  # pure cache hit
        engine.snapshot("New Line Networks", DATES[1])  # new entry
        delta = engine.collect_cache_delta(baseline)
        assert [key for key, _ in delta.snapshots] == [
            engine.snapshot_key("New Line Networks", DATES[1])
        ]
        assert delta.stats.snapshot.hits == 1
        assert delta.stats.snapshot.misses == 1

    def test_absorb_reproduces_serial_cache_state(self, scenario):
        serial = _fresh_engine(scenario)
        serial.snapshot("Webline Holdings", DATES[1])
        serial.snapshot("New Line Networks", DATES[1])

        parent = _fresh_engine(scenario)
        parent.snapshot("Webline Holdings", DATES[1])
        worker = _fresh_engine(scenario)
        worker.seed_cache_state(parent.export_cache_state())
        baseline = worker.cache_baseline()
        worker.snapshot("New Line Networks", DATES[1])
        parent.absorb_cache_delta(worker.collect_cache_delta(baseline))

        assert _memo_contents(parent) == _memo_contents(serial)
        assert parent._snapshots.keys() == serial._snapshots.keys()
        assert parent.stats == serial.stats

    def test_absorb_rejects_mismatched_params(self, scenario):
        engine = _fresh_engine(scenario)
        sibling = engine.with_params(stitch_tolerance_m=120.0)
        sibling.snapshot("Webline Holdings", DATES[1])
        delta = sibling.collect_cache_delta(_fresh_engine(scenario)
                                            .with_params(stitch_tolerance_m=120.0)
                                            .cache_baseline())
        with pytest.raises(ValueError):
            engine.absorb_cache_delta(delta)


class TestGridSessionRouting:
    def test_default_params_route_to_parent(self, scenario):
        engine = _fresh_engine(scenario)
        with GridSession(engine, 1) as session:
            assert session.engine_for(None) is engine

    def test_serial_overrides_get_fresh_engines_per_call(self, scenario):
        engine = _fresh_engine(scenario)
        key = (("stitch_tolerance_m", 120.0),)
        with GridSession(engine, 1) as session:
            first = session.engine_for(key)
            second = session.engine_for(key)
        assert first is not second
        assert first is not engine

    def test_parallel_overrides_pool_seeded_siblings(self, scenario):
        engine = _fresh_engine(scenario)
        engine.snapshot("Webline Holdings", DATES[1])  # warm the memo
        key = (("stitch_tolerance_m", 120.0),)
        with GridSession(engine, 2, backend="inline") as session:
            first = session.engine_for(key)
            second = session.engine_for(key)
            assert first is second
            assert _memo_contents(first) == _memo_contents(engine)
            assert len(first._snapshots) == 0  # geodesic-only seed

    def test_worker_ids_are_chunk_indices(self, scenario):
        engine = _fresh_engine(scenario)
        with GridSession(engine, 2, backend="inline") as session:
            workers = session.map(_worker_id_task, list(range(4)))
        assert workers == [0, 0, 1, 1]

    def test_params_callable_pools_one_sibling_per_override_set(self, scenario):
        engine = _fresh_engine(scenario)
        items = [("Webline Holdings", 90.0), ("Webline Holdings", 120.0)]
        with GridSession(engine, 2, backend="inline") as session:
            session.map(
                _worker_id_task,
                items,
                params=lambda item: {"stitch_tolerance_m": item[1]},
            )
            assert set(session._siblings) == {
                (("stitch_tolerance_m", 90.0),),
                (("stitch_tolerance_m", 120.0),),
            }


class TestSerialParallelEquivalence:
    """The ISSUE's property: serial and parallel runs agree on results,
    geodesic-memo contents, and CacheStats totals on the parent engine."""

    @settings(max_examples=10, deadline=None)
    @given(
        names=st.lists(
            st.sampled_from(FEATURED), min_size=1, max_size=3, unique=True
        ),
        jobs=st.integers(min_value=2, max_value=4),
    )
    def test_inline_grid_leaves_identical_parent_state(
        self, scenario, names, jobs
    ):
        items = [(name, DATES) for name in names]

        serial_engine = _fresh_engine(scenario)
        with GridSession(serial_engine, 1) as session:
            expected = session.map(_latency_series, items)

        parallel_engine = _fresh_engine(scenario)
        with GridSession(parallel_engine, jobs, backend="inline") as session:
            got = session.map(_latency_series, items)

        assert got == expected
        assert _memo_contents(parallel_engine) == _memo_contents(serial_engine)
        assert parallel_engine.stats == serial_engine.stats

    def test_override_sweep_matches_serial_and_spares_parent(self, scenario):
        items = [("Webline Holdings", DATES), ("New Line Networks", DATES)]
        params = {"stitch_tolerance_m": 120.0}

        serial_engine = _fresh_engine(scenario)
        with GridSession(serial_engine, 1) as session:
            expected = session.map(_latency_series, items, params=params)
        serial_stats = serial_engine.stats

        parallel_engine = _fresh_engine(scenario)
        with GridSession(parallel_engine, 3, backend="inline") as session:
            got = session.map(_latency_series, items, params=params)

        assert got == expected
        # Override tasks run on siblings; the parent engine is untouched
        # either way (counters idle, memo empty on these cold parents).
        assert parallel_engine.stats == serial_stats
        assert _memo_contents(parallel_engine) == _memo_contents(serial_engine)


class TestProcessGrid:
    """Spawn transport for the grid: seeds out, deltas home."""

    def test_process_grid_matches_serial_and_merges_back(self, scenario):
        items = [(name, DATES) for name in FEATURED[:4]]

        serial_engine = _fresh_engine(scenario)
        with GridSession(serial_engine, 1) as session:
            expected = session.map(_latency_series, items)

        parallel_engine = _fresh_engine(scenario)
        with GridSession(parallel_engine, 2, backend="process") as session:
            got = session.map(_latency_series, items)

        assert got == expected
        # Merge-back left the parent holding the same learned entries.
        assert _memo_contents(parallel_engine) == _memo_contents(serial_engine)
        assert parallel_engine._snapshots.keys() == serial_engine._snapshots.keys()
        assert parallel_engine._routes.keys() == serial_engine._routes.keys()
        # Lookup totals match exactly: each licensee's reconstruction work
        # is fixed, only the hit/miss split may shift with worker-local
        # memo warmth.
        for cache in ("snapshot", "route", "geodesic"):
            parallel_counter = getattr(parallel_engine.stats, cache)
            serial_counter = getattr(serial_engine.stats, cache)
            assert parallel_counter.lookups == serial_counter.lookups

    def test_process_session_reuses_pool_across_maps(self, scenario):
        engine = _fresh_engine(scenario)
        items = [(name, (DATES[1],)) for name in FEATURED[:2]]
        with GridSession(engine, 2, backend="process") as session:
            first = session.map(_latency_series, items)
            pool = session._pmap._pool
            second = session.map(_latency_series, items)
            assert session._pmap._pool is pool
        assert first == second


class TestScraperBatching:
    def test_count_filings_parallel_matches_serial(self, scenario):
        from repro.uls.portal import UlsPortal
        from repro.uls.scraper import UlsScraper

        names = list(FEATURED[:3])
        serial = UlsScraper(UlsPortal(scenario.database))
        expected = serial.count_filings(names)

        batched = UlsScraper(UlsPortal(scenario.database))
        got = batched.count_filings(names, jobs=2)

        assert got == expected
        assert batched.stats == serial.stats

    def test_grid_tasks_share_session_scraper(self, scenario):
        engine = _fresh_engine(scenario)
        with grid_session(engine, 2) as session:
            counts = session.map(_count_filings, list(FEATURED[:2]))
            stats = session.scraper.stats
        assert all(count > 0 for count in counts)
        # Both tasks' page traffic landed on the session's one scraper
        # (inline backends share it; process workers merge theirs back).
        assert stats.search_pages >= 2
