"""Persistent cache store (repro.store): warm starts, cold-identical output.

The store's load-bearing properties, in rough order of importance:

1. **Byte identity** — a store-warmed engine answers every query exactly
   as a cold rebuild would (the store changes speed, never bytes).
2. **Fail cold, never crash** — corrupt, truncated, or stale entries
   degrade to a cold start (with quarantine/counters), no exception.
3. **Invalidation** — any database mutation (generation bump) changes
   the content digest, so stale entries can never warm a changed world.
4. **Atomic publication** — concurrent writers of the same fingerprint
   never produce a torn read.

Plus the integration seams: engine attach/checkpoint, the CLI's
``--cache-dir`` / ``cache {stat,gc,clear}``, serve's store-warmed boot
and rendered-body cache, and parallel's store-seeded workers.
"""

from __future__ import annotations

import dataclasses
import datetime as dt
import os
import pickle
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core import engine as engine_mod
from repro.core.engine import CorridorEngine, EngineCacheExport
from repro.parallel.grid import GridSession, _resolve_seed
from repro.serve.service import CorridorQueryService
from repro.store import (
    STORE_SCHEMA_VERSION,
    CacheStore,
    StoreSeedRef,
    store_fingerprint,
)
from repro.store import layout
from repro.uls.database import UlsDatabase

from tests.conftest import make_license

DATES = (dt.date(2016, 1, 1), dt.date(2019, 1, 1), dt.date(2020, 4, 1))


def _engine(scenario, store=False) -> CorridorEngine:
    """A private engine (never the scenario's shared default)."""
    return CorridorEngine(scenario.database, scenario.corridor, store=store)


@pytest.fixture(scope="module")
def populated_store(tmp_path_factory, scenario):
    """A store holding one checkpoint of real snapshot/route work."""
    store = CacheStore(tmp_path_factory.mktemp("store"))
    engine = _engine(scenario, store=store)
    for name in scenario.connected_names:
        for date in DATES:
            engine.snapshot(name, date)
        engine.route(name, scenario.snapshot_date, "CME", "NY4")
    # Also the full /rankings workload, so a restarted server's first
    # request finds everything it needs on disk.
    service = CorridorQueryService(scenario=scenario, engine=engine)
    assert service.handle_url("/rankings")[0] == 200
    engine.checkpoint()
    return store


# ----------------------------------------------------------------------
# Fingerprints and invalidation
# ----------------------------------------------------------------------


class TestFingerprint:
    def test_identical_content_shares_digest_and_fingerprint(self, scenario):
        copy = UlsDatabase(list(scenario.database))
        assert copy.content_digest() == scenario.database.content_digest()

    def test_generation_bump_changes_digest(self, scenario):
        copy = UlsDatabase(list(scenario.database))
        before = copy.content_digest()
        copy.add(make_license(license_id="ZZ9001", licensee="Digest Test LLC"))
        assert copy.content_digest() != before

    def test_params_kernel_and_versions_separate_keys(self):
        base = store_fingerprint("digest", (100.0, "slack"), "columnar")
        assert store_fingerprint("digest", (120.0, "slack"), "columnar") != base
        assert store_fingerprint("digest", (100.0, "slack"), "object") != base
        assert store_fingerprint("other", (100.0, "slack"), "columnar") != base

    def test_engine_fingerprint_tracks_params(self, scenario, tmp_path):
        store = CacheStore(tmp_path)
        engine = _engine(scenario)
        sibling = engine.with_params(stitch_tolerance_m=120.0)
        assert store.fingerprint_for(engine) != store.fingerprint_for(sibling)

    def test_mutated_database_misses_old_entry(self, scenario, tmp_path):
        store = CacheStore(tmp_path)
        copy = UlsDatabase(list(scenario.database))
        warm = CorridorEngine(copy, scenario.corridor, store=store)
        warm.snapshot(scenario.connected_names[0], DATES[-1])
        warm.checkpoint()
        copy.add(make_license(license_id="ZZ9002", licensee="Digest Test LLC"))
        fresh = CorridorEngine(copy, scenario.corridor, store=False)
        assert store.load_into(fresh) is False
        # Attach on the empty store was miss #1; the post-mutation lookup
        # is miss #2 — and never a hit against the pre-mutation entry.
        counters = store.counters()
        assert counters["misses"] == 2
        assert counters["hits"] == 0


# ----------------------------------------------------------------------
# Round-trip byte identity
# ----------------------------------------------------------------------


class TestRoundTrip:
    def test_attach_loads_and_serves_hits(self, scenario, populated_store):
        engine = _engine(scenario, store=populated_store)
        engine.snapshot(scenario.connected_names[0], DATES[-1])
        assert engine.stats.snapshot.hits == 1
        assert engine.stats.snapshot.misses == 0

    @given(
        licensee_index=st.integers(min_value=0, max_value=8),
        date=st.sampled_from(DATES),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_store_warmed_output_equals_cold_rebuild(
        self, scenario, populated_store, licensee_index, date
    ):
        name = scenario.connected_names[
            licensee_index % len(scenario.connected_names)
        ]
        cold = _engine(scenario)
        warmed = _engine(scenario, store=populated_store)
        assert repr(warmed.snapshot(name, date)) == repr(cold.snapshot(name, date))
        assert repr(
            warmed.route(name, date, "CME", "NY4")
        ) == repr(cold.route(name, date, "CME", "NY4"))
        # The warmed engine answered without rebuilding anything the
        # store already held (full-date queries on connected names).
        if date in DATES:
            assert warmed.stats.snapshot.misses == 0

    def test_loaded_export_round_trips(self, scenario, populated_store):
        warm = _engine(scenario, store=populated_store)
        fingerprint = populated_store.fingerprint_for(warm)
        loaded = populated_store.load_export(fingerprint)
        assert isinstance(loaded, EngineCacheExport)
        re_exported = warm.export_cache_state()
        assert dict(loaded.snapshots).keys() == dict(re_exported.snapshots).keys()
        assert dict(loaded.routes).keys() == dict(re_exported.routes).keys()
        assert loaded.cursors == re_exported.cursors


# ----------------------------------------------------------------------
# Corrupt / truncated / stale entries fall back cold
# ----------------------------------------------------------------------


class TestFallbacks:
    def _entry(self, store, scenario):
        engine = _engine(scenario, store=store)
        engine.snapshot(scenario.connected_names[0], DATES[-1])
        path = engine.checkpoint()
        return engine, path

    def test_corrupt_entry_quarantined_and_cold(self, scenario, tmp_path):
        store = CacheStore(tmp_path)
        _, path = self._entry(store, scenario)
        path.write_bytes(b"not a pickle at all")
        fresh = CorridorEngine(scenario.database, scenario.corridor, store=store)
        assert fresh.stats.snapshot.size == 0
        counters = store.counters()
        assert counters["corrupt"] == 1
        assert not path.exists()
        quarantined = list(layout.quarantine_dir(store.cache_dir).iterdir())
        assert len(quarantined) == 1
        # Cold but correct.
        network = fresh.snapshot(scenario.connected_names[0], DATES[-1])
        assert repr(network) == repr(
            _engine(scenario).snapshot(scenario.connected_names[0], DATES[-1])
        )

    def test_truncated_entry_quarantined(self, scenario, tmp_path):
        store = CacheStore(tmp_path)
        _, path = self._entry(store, scenario)
        path.write_bytes(path.read_bytes()[:64])
        assert store.load_export(path.stem) is None
        assert store.counters()["corrupt"] == 1
        assert not path.exists()

    def test_stale_schema_is_miss_not_quarantine(self, tmp_path):
        store = CacheStore(tmp_path)
        payload = pickle.dumps(
            {"schema": STORE_SCHEMA_VERSION - 1, "fingerprint": "f" * 64}
        )
        layout.write_entry(store.cache_dir, "f" * 64, payload)
        assert store.load_export("f" * 64) is None
        counters = store.counters()
        assert counters["stale"] == 1
        assert counters["corrupt"] == 0
        # Left in place for gc to age out, not quarantined.
        assert layout.entry_path(store.cache_dir, "f" * 64).exists()

    def test_foreign_fingerprint_is_stale(self, tmp_path):
        store = CacheStore(tmp_path)
        payload = pickle.dumps(
            {
                "schema": STORE_SCHEMA_VERSION,
                "fingerprint": "b" * 64,
                "export": None,
            }
        )
        layout.write_entry(store.cache_dir, "a" * 64, payload)
        assert store.load_export("a" * 64) is None
        assert store.counters()["stale"] == 1

    def test_wrong_payload_type_is_stale(self, tmp_path):
        store = CacheStore(tmp_path)
        layout.write_entry(store.cache_dir, "c" * 64, pickle.dumps([1, 2, 3]))
        assert store.load_export("c" * 64) is None
        assert store.counters()["stale"] == 1

    def test_missing_entry_is_plain_miss(self, tmp_path):
        store = CacheStore(tmp_path)
        assert store.load_export("d" * 64) is None
        counters = store.counters()
        assert counters["misses"] == 1
        assert counters["corrupt"] == 0
        assert counters["stale"] == 0


# ----------------------------------------------------------------------
# Concurrent writers never corrupt the store
# ----------------------------------------------------------------------

_WRITER_SCRIPT = """
import pickle, sys
from repro.store import layout
from repro.store.fingerprint import STORE_SCHEMA_VERSION

cache_dir, fingerprint, marker = sys.argv[1], sys.argv[2], sys.argv[3]
payload = pickle.dumps(
    {
        "schema": STORE_SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "export": marker * 2000,
    }
)
for _ in range(200):
    layout.write_entry(cache_dir, fingerprint, payload)
"""


class TestConcurrentWriters:
    def test_two_processes_publishing_same_key_never_tear(self, tmp_path):
        fingerprint = "e" * 64
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        writers = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SCRIPT, str(tmp_path), fingerprint, marker],
                env=env,
                cwd=os.getcwd(),
            )
            for marker in ("A", "B")
        ]
        seen = set()
        try:
            while any(writer.poll() is None for writer in writers):
                data = layout.read_entry(tmp_path, fingerprint)
                if data is None:
                    continue
                # Every observed read is one writer's complete payload —
                # never a torn mix, never a partial pickle.
                payload = pickle.loads(data)
                assert payload["schema"] == STORE_SCHEMA_VERSION
                assert payload["fingerprint"] == fingerprint
                assert payload["export"] in ("A" * 2000, "B" * 2000)
                seen.add(payload["export"][0])
        finally:
            for writer in writers:
                writer.wait(timeout=60)
        assert all(writer.returncode == 0 for writer in writers)
        assert seen  # the reader actually observed published entries
        # No stray temp files left behind.
        assert not [
            p
            for p in layout.entry_dir(tmp_path).iterdir()
            if p.name.startswith(".tmp-")
        ]


# ----------------------------------------------------------------------
# GC bounds
# ----------------------------------------------------------------------


class TestGc:
    def _seed_entries(self, store):
        base = 1_700_000_000.0
        for index, fingerprint in enumerate(("1" * 64, "2" * 64, "3" * 64)):
            path = layout.write_entry(
                store.cache_dir, fingerprint, b"x" * (100 * (index + 1))
            )
            os.utime(path, (base + index * 100, base + index * 100))
        return base

    def test_stat_lists_entries_sorted(self, tmp_path):
        store = CacheStore(tmp_path)
        self._seed_entries(store)
        entries = store.stat()
        assert [e.fingerprint for e in entries] == ["1" * 64, "2" * 64, "3" * 64]
        assert [e.size_bytes for e in entries] == [100, 200, 300]

    def test_gc_age_bound_removes_old_entries(self, tmp_path):
        store = CacheStore(tmp_path)
        base = self._seed_entries(store)
        removed = store.gc(max_age_s=150.0, now_s=base + 250.0)
        assert [e.fingerprint for e in removed] == ["1" * 64]
        assert [e.fingerprint for e in store.stat()] == ["2" * 64, "3" * 64]

    def test_gc_size_bound_keeps_newest(self, tmp_path):
        store = CacheStore(tmp_path)
        self._seed_entries(store)
        # Newest (300 B) fits a 350 B budget; the rest must go.
        removed = store.gc(max_bytes=350)
        assert sorted(e.fingerprint for e in removed) == ["1" * 64, "2" * 64]
        assert [e.fingerprint for e in store.stat()] == ["3" * 64]

    def test_gc_age_requires_now(self, tmp_path):
        store = CacheStore(tmp_path)
        with pytest.raises(ValueError):
            store.gc(max_age_s=10.0)

    def test_clear_removes_everything(self, tmp_path):
        store = CacheStore(tmp_path)
        self._seed_entries(store)
        layout.write_entry(store.cache_dir, "9" * 64, b"not a pickle")
        assert store.load_export("9" * 64) is None  # quarantines it
        assert store.clear() == 3
        assert store.stat() == ()
        assert not list(layout.quarantine_dir(store.cache_dir).glob("*"))


# ----------------------------------------------------------------------
# Engine wiring
# ----------------------------------------------------------------------


class TestEngineWiring:
    def test_store_false_opts_out_of_module_default(self, scenario, tmp_path):
        store = CacheStore(tmp_path)
        engine_mod.STORE_DEFAULT = store
        try:
            defaulted = _engine(scenario, store=None)
            opted_out = _engine(scenario, store=False)
        finally:
            engine_mod.STORE_DEFAULT = None
        assert defaulted.store is store
        assert opted_out.store is None
        assert store.engines() == (defaulted,)

    def test_checkpoint_without_store_is_noop(self, scenario):
        assert _engine(scenario).checkpoint() is None

    def test_with_params_sibling_never_inherits_store(self, scenario, tmp_path):
        engine = _engine(scenario, store=CacheStore(tmp_path))
        assert engine.with_params(stitch_tolerance_m=120.0).store is None

    def test_checkpoint_after_attach_preserves_prior_entries(
        self, scenario, tmp_path
    ):
        store = CacheStore(tmp_path)
        first = _engine(scenario, store=store)
        first.snapshot(scenario.connected_names[0], DATES[0])
        first.checkpoint()
        # A second process/engine doing different work must not wipe the
        # first's entries: it auto-loaded them, so its checkpoint is a
        # superset.
        second = _engine(scenario, store=store)
        second.snapshot(scenario.connected_names[1], DATES[1])
        second.checkpoint()
        third = _engine(scenario, store=CacheStore(tmp_path))
        third.snapshot(scenario.connected_names[0], DATES[0])
        third.snapshot(scenario.connected_names[1], DATES[1])
        assert third.stats.snapshot.misses == 0


# ----------------------------------------------------------------------
# CLI: --cache-dir and `cache {stat,gc,clear}`
# ----------------------------------------------------------------------


class TestCacheCli:
    @staticmethod
    def _reset_default_engine():
        # The paper scenario (and its shared default engine) is
        # lru-cached per process; the store only attaches at engine
        # construction.  Clearing mimics the fresh process each real CLI
        # invocation gets (scripts/check.sh's store gate runs
        # subprocesses; these tests run main() in-process).
        from repro.synth.scenario import paper2020_scenario

        paper2020_scenario.cache_clear()

    @pytest.fixture(autouse=True)
    def _fresh_scenario(self):
        self._reset_default_engine()
        yield
        self._reset_default_engine()

    def test_cache_dir_populates_store_and_output_is_identical(
        self, capsys, tmp_path
    ):
        assert main(["table1"]) == 0
        plain = capsys.readouterr().out
        self._reset_default_engine()
        assert main(["table1", "--cache-dir", str(tmp_path)]) == 0
        assert capsys.readouterr().out == plain
        assert len(CacheStore(tmp_path).stat()) == 1
        assert engine_mod.STORE_DEFAULT is None  # restored after the run
        self._reset_default_engine()
        assert main(["table1", "--cache-dir", str(tmp_path)]) == 0
        assert capsys.readouterr().out == plain

    def test_no_store_disables_env_store(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["table1", "--no-store"]) == 0
        capsys.readouterr()
        assert CacheStore(tmp_path).stat() == ()

    def test_cache_stat_gc_clear(self, capsys, tmp_path):
        store_dir = str(tmp_path)
        assert main(["cache", "stat", "--cache-dir", store_dir]) == 0
        assert "0 entries" in capsys.readouterr().out
        assert main(["table1", "--cache-dir", store_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stat", "--cache-dir", store_dir]) == 0
        assert "1 entries" in capsys.readouterr().out
        assert main(["cache", "gc", "--cache-dir", store_dir]) == 2
        assert "pass --max-bytes" in capsys.readouterr().err
        assert (
            main(["cache", "gc", "--cache-dir", store_dir, "--max-bytes", "0"])
            == 0
        )
        assert "removed 1 entries" in capsys.readouterr().out
        self._reset_default_engine()
        assert main(["table1", "--cache-dir", store_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", store_dir]) == 0
        assert "cleared 1 entries" in capsys.readouterr().out
        assert CacheStore(store_dir).stat() == ()

    def test_cache_respects_env_dir(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "stat"]) == 0
        assert str(tmp_path) in capsys.readouterr().out


# ----------------------------------------------------------------------
# Serve: store-warmed boot, checkpoint on shutdown, body cache
# ----------------------------------------------------------------------


class TestServeStore:
    def test_restart_serves_first_rankings_from_store(
        self, scenario, populated_store
    ):
        # "Restart": a brand-new engine over the same database, warmed
        # purely from disk.
        engine = _engine(scenario, store=populated_store)
        service = CorridorQueryService(scenario=scenario, engine=engine)
        status, payload = service.handle_url("/rankings")
        assert status == 200
        assert payload["rankings"]
        assert engine.stats.snapshot.misses == 0
        status, stats = service.handle_url("/stats")
        assert status == 200
        assert stats["store"]["hits"] >= 1
        assert stats["store"]["loads"] >= 1

    def test_server_close_checkpoints_store(self, scenario, tmp_path):
        from repro.serve import CorridorServer

        store = CacheStore(tmp_path)
        engine = _engine(scenario, store=store)
        service = CorridorQueryService(scenario=scenario, engine=engine)
        with CorridorServer(service) as server:
            import urllib.request

            with urllib.request.urlopen(server.url + "/healthz") as response:
                assert response.status == 200
        saves = store.counters()["saves"]
        assert saves >= 1
        assert len(store.stat()) == 1


class TestBodyCache:
    def _service(self, scenario):
        copy = UlsDatabase(list(scenario.database))
        engine = CorridorEngine(copy, scenario.corridor, store=False)
        replaced = dataclasses.replace(scenario, database=copy)
        return CorridorQueryService(scenario=replaced, engine=engine), copy

    def test_repeat_request_served_from_body_cache(self, scenario):
        service, _ = self._service(scenario)
        status1, body1 = service.handle_http("/rankings")
        status2, body2 = service.handle_http("/rankings")
        assert (status1, status2) == (200, 200)
        assert body1 == body2
        described = service.bodies.describe()
        assert described["hits"] == 1
        assert described["misses"] == 1
        assert described["entries"] == 1
        # Body hits still count as requests.
        assert service.facade.describe()["facade"]["requests"] == 2

    def test_distinct_params_are_distinct_entries(self, scenario):
        service, _ = self._service(scenario)
        service.handle_http("/rankings")
        service.handle_http("/rankings?date=2019-01-01")
        assert service.bodies.describe()["entries"] == 2

    def test_generation_bump_invalidates_bodies(self, scenario):
        service, database = self._service(scenario)
        service.handle_http("/rankings")
        database.add(
            make_license(license_id="ZZ9003", licensee="Body Cache LLC")
        )
        status, _ = service.handle_http("/rankings")
        assert status == 200
        described = service.bodies.describe()
        assert described["invalidations"] == 1
        assert described["hits"] == 0
        assert described["generation"] == database.generation

    def test_errors_and_live_endpoints_never_cached(self, scenario):
        service, _ = self._service(scenario)
        status, _ = service.handle_http("/rankings?date=nope")
        assert status == 400
        service.handle_http("/rankings?date=nope")
        service.handle_http("/healthz")
        service.handle_http("/stats")
        described = service.bodies.describe()
        assert described["entries"] == 0
        assert described["hits"] == 0

    def test_stats_exposes_body_cache_section(self, serve_service):
        status, payload = serve_service.handle_url("/stats")
        assert status == 200
        assert set(payload["body_cache"]) == {
            "entries",
            "hits",
            "misses",
            "invalidations",
            "generation",
        }

    def test_cold_service_bypasses_body_cache(self, scenario):
        service = CorridorQueryService(scenario=scenario, warm=False)
        status, _ = service.handle_http("/healthz")
        assert status == 200
        assert service._body_key("/rankings") is None


# ----------------------------------------------------------------------
# Parallel: workers seed from the store
# ----------------------------------------------------------------------


def _store_latency_task(ctx, item):
    name, date = item
    route = ctx.engine.route(name, date, "CME", "NY4")
    return None if route is None else route.latency_s


class TestParallelSeeding:
    def test_resolve_seed_passthrough_and_ref(self, scenario, populated_store):
        export = _engine(scenario).export_cache_state()
        assert _resolve_seed(None) is None
        assert _resolve_seed(export) is export
        fingerprint = populated_store.fingerprint_for(_engine(scenario))
        ref = StoreSeedRef(str(populated_store.cache_dir), fingerprint)
        resolved = ref.load()
        assert isinstance(resolved, EngineCacheExport)
        missing = StoreSeedRef(str(populated_store.cache_dir), "0" * 64)
        assert _resolve_seed(missing) is None

    def test_process_workers_seed_from_store(
        self, scenario, populated_store, tmp_path
    ):
        items = [
            (name, scenario.snapshot_date)
            for name in scenario.connected_names[:4]
        ]
        serial = _engine(scenario)
        with GridSession(serial, 1) as session:
            expected = session.map(_store_latency_task, items)

        parent = _engine(scenario, store=populated_store)
        with GridSession(parent, 2, backend="process") as session:
            got = session.map(_store_latency_task, items)
        assert got == expected
        # The parent checkpointed before fan-out (seed publication).
        assert populated_store.counters()["saves"] >= 1
