"""Property tests for the temporal event index (repro.uls.index).

The index's whole value proposition is that its O(log n) answers are
*exactly* the answers a naive per-license ``is_active`` scan gives, so
the core tests are hypothesis properties over randomly-generated license
life cycles: membership, counts, delta application, delta composition,
and backward symmetry.
"""

from __future__ import annotations

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uls import TemporalDelta, TemporalIndex, license_interval
from repro.uls.database import UlsDatabase
from tests.conftest import make_license

EPOCH = dt.date(2012, 1, 1)
HORIZON_DAYS = 3000


def _date(offset: int) -> dt.date:
    return EPOCH + dt.timedelta(days=offset)


def _build_licenses(specs):
    """Licenses from (grant, expiration, cancellation, termination) day
    offsets (None = absent).  Dates are set directly so every life-cycle
    shape — including degenerate end-before-grant windows — is covered."""
    licenses = []
    for i, (grant, expiry, cancel, term) in enumerate(specs):
        lic = make_license(f"L{i:04d}", grant=_date(grant) if grant is not None else None)
        lic.expiration_date = _date(expiry) if expiry is not None else None
        lic.cancellation_date = _date(cancel) if cancel is not None else None
        lic.termination_date = _date(term) if term is not None else None
        licenses.append(lic)
    return licenses


def naive_active_ids(licenses, on_date: dt.date) -> frozenset[str]:
    return frozenset(
        lic.license_id for lic in licenses if lic.is_active(on_date)
    )


offset = st.integers(min_value=0, max_value=HORIZON_DAYS)
maybe_offset = st.none() | offset
license_spec = st.tuples(maybe_offset, maybe_offset, maybe_offset, maybe_offset)
license_sets = st.lists(license_spec, min_size=0, max_size=30)
# Probe slightly outside the horizon too, so boundary intervals are hit.
probe = st.integers(min_value=-10, max_value=HORIZON_DAYS + 10)


class TestActiveSetProperties:
    @settings(max_examples=200, deadline=None)
    @given(specs=license_sets, probes=st.lists(probe, min_size=1, max_size=8))
    def test_active_ids_match_naive_scan(self, specs, probes):
        licenses = _build_licenses(specs)
        index = TemporalIndex(licenses)
        for p in probes:
            date = _date(p)
            assert index.active_ids_at(date) == naive_active_ids(licenses, date)

    @settings(max_examples=200, deadline=None)
    @given(specs=license_sets, probes=st.lists(probe, min_size=1, max_size=8))
    def test_active_count_matches_set_size(self, specs, probes):
        index = TemporalIndex(_build_licenses(specs))
        for p in probes:
            date = _date(p)
            assert index.active_count_at(date) == len(index.active_ids_at(date))

    def test_event_date_boundaries_exact(self):
        # The day an end-date lands is already inactive; the grant day is
        # already active — the index must agree with is_active on both.
        lic = make_license("L1", grant=_date(10))
        lic.expiration_date = _date(20)
        index = TemporalIndex([lic])
        assert "L1" not in index.active_ids_at(_date(9))
        assert "L1" in index.active_ids_at(_date(10))
        assert "L1" in index.active_ids_at(_date(19))
        assert "L1" not in index.active_ids_at(_date(20))


class TestDeltaProperties:
    @settings(max_examples=200, deadline=None)
    @given(specs=license_sets, d1=probe, d2=probe)
    def test_diff_apply_round_trip(self, specs, d1, d2):
        """active(d2) == diff(d1, d2).apply(active(d1)), both directions."""
        index = TemporalIndex(_build_licenses(specs))
        a, b = _date(d1), _date(d2)
        delta = index.diff(a, b)
        assert delta.apply(index.active_ids_at(a)) == index.active_ids_at(b)
        back = index.diff(b, a)
        assert back.apply(index.active_ids_at(b)) == index.active_ids_at(a)

    @settings(max_examples=200, deadline=None)
    @given(specs=license_sets, d1=probe, d2=probe, d3=probe)
    def test_diff_composes(self, specs, d1, d2, d3):
        """diff(a, c) == diff(a, b) then diff(b, c), up to cancellation.

        Composition is on *application*: ids granted in (a, b] that lapse
        again in (b, c] cancel out of diff(a, c), so the deltas are
        compared through their effect on the d1 fingerprint rather than
        member-by-member.
        """
        index = TemporalIndex(_build_licenses(specs))
        a, b, c = _date(d1), _date(d2), _date(d3)
        composed = index.diff(b, c).apply(index.diff(a, b).apply(index.active_ids_at(a)))
        assert composed == index.diff(a, c).apply(index.active_ids_at(a))
        assert composed == index.active_ids_at(c)

    @settings(max_examples=100, deadline=None)
    @given(specs=license_sets, d1=probe, d2=probe)
    def test_reversed_symmetry(self, specs, d1, d2):
        index = TemporalIndex(_build_licenses(specs))
        a, b = _date(d1), _date(d2)
        forward = index.diff(a, b)
        backward = index.diff(b, a)
        assert backward.granted == forward.lapsed
        assert backward.lapsed == forward.granted
        assert backward == forward.reversed()

    def test_same_date_and_eventless_window_are_empty(self):
        lic = make_license("L1", grant=_date(0))
        lic.expiration_date = _date(100)
        index = TemporalIndex([lic])
        assert index.diff(_date(50), _date(50)).is_empty
        assert not index.diff(_date(40), _date(60))
        delta = index.diff(_date(40), _date(60))
        assert delta.size == 0

    def test_net_noop_inside_window_cancels(self):
        # A license both granted and lapsed inside the window contributes
        # nothing to the net delta.
        lic = make_license("L1", grant=_date(10))
        lic.cancellation_date = _date(20)
        index = TemporalIndex([lic])
        delta = index.diff(_date(0), _date(30))
        assert delta.is_empty
        inner = index.diff(_date(0), _date(15))
        assert inner.granted == frozenset({"L1"})
        assert inner.lapsed == frozenset()


class TestLicenseInterval:
    def test_no_grant_is_never_active(self):
        lic = make_license("L1", grant=None)
        assert license_interval(lic) is None

    def test_end_is_earliest_terminator(self):
        lic = make_license("L1", grant=_date(0))
        lic.expiration_date = _date(300)
        lic.cancellation_date = _date(200)
        lic.termination_date = _date(250)
        assert license_interval(lic) == (_date(0), _date(200))

    def test_end_on_or_before_grant_collapses(self):
        lic = make_license("L1", grant=_date(100))
        lic.cancellation_date = _date(100)
        assert license_interval(lic) is None


class TestRawEvents:
    def test_event_ids_between_includes_shadowed_dates(self):
        # A termination recorded *after* an earlier effective cancellation
        # never changes the active set, but it is still a reportable raw
        # event — the candidate set must include it.
        lic = make_license("L1", grant=_date(0))
        lic.cancellation_date = _date(50)
        lic.termination_date = _date(80)
        index = TemporalIndex([lic])
        assert index.event_ids_between(_date(70), _date(90)) == ["L1"]
        assert index.event_ids_between(_date(51), _date(79)) == []

    def test_window_is_half_open(self):
        lic = make_license("L1", grant=_date(10))
        index = TemporalIndex([lic])
        assert index.event_ids_between(_date(9), _date(10)) == ["L1"]
        assert index.event_ids_between(_date(10), _date(11)) == []

    def test_degenerate_window_raises(self):
        index = TemporalIndex([])
        with pytest.raises(ValueError):
            index.event_ids_between(_date(5), _date(5))


class TestEmptyAndIntrospection:
    def test_empty_index(self):
        index = TemporalIndex([])
        assert index.active_ids_at(_date(0)) == frozenset()
        assert index.active_count_at(_date(0)) == 0
        assert index.diff(_date(0), _date(100)).is_empty
        assert index.event_count == 0
        assert index.event_dates == ()

    def test_event_count_and_dates(self):
        a = make_license("L1", grant=_date(0))
        a.expiration_date = _date(10)
        b = make_license("L2", grant=_date(0))
        b.expiration_date = None
        index = TemporalIndex([a, b])
        # Two grants + one expiration = 3 events over 2 distinct dates.
        assert index.event_count == 3
        assert index.event_dates == (_date(0), _date(10))

    def test_memoised_fingerprints_are_identical_objects(self):
        # The engine relies on repeat lookups returning the *same*
        # frozenset object (cached hash, cheap key equality).
        lic = make_license("L1", grant=_date(0))
        index = TemporalIndex([lic])
        assert index.active_ids_at(_date(5)) is index.active_ids_at(_date(6))


class TestDatabaseIntegration:
    def test_database_index_matches_active_on(self):
        licenses = _build_licenses(
            [(0, 500, None, None), (100, None, 300, None), (None, None, None, None)]
        )
        db = UlsDatabase(licenses)
        for p in (0, 50, 99, 100, 299, 300, 400, 600):
            date = _date(p)
            assert frozenset(
                lic.license_id for lic in db.active_on(date)
            ) == db.temporal_index().active_ids_at(date)

    def test_mutation_bumps_generation_and_invalidates(self):
        db = UlsDatabase([make_license("L1", grant=_date(0))])
        before = db.generation
        index = db.temporal_index()
        assert db.temporal_index() is index  # cached
        db.add(make_license("L2", grant=_date(10)))
        assert db.generation == before + 1
        fresh = db.temporal_index()
        assert fresh is not index
        assert "L2" in fresh.active_ids_at(_date(20))

    def test_per_licensee_index(self):
        a = make_license("L1", licensee="Alpha", grant=_date(0))
        b = make_license("L2", licensee="Beta", grant=_date(0))
        db = UlsDatabase([a, b])
        assert db.temporal_index("Alpha").active_ids_at(_date(5)) == {"L1"}
        assert db.temporal_index("Beta").active_ids_at(_date(5)) == {"L2"}
        assert db.temporal_index("Nobody").active_ids_at(_date(5)) == frozenset()


class TestDeltaDataclass:
    def test_bool_size_and_apply(self):
        delta = TemporalDelta(granted=frozenset({"A"}), lapsed=frozenset({"B"}))
        assert delta
        assert delta.size == 2
        assert delta.apply(frozenset({"B", "C"})) == {"A", "C"}
