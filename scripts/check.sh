#!/usr/bin/env bash
# Tier-1 gate: syntax, static analysis, then the full test suite plus the
# engine-equivalence property tests (cached results must match cache-free
# reconstruction exactly).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Fast syntax gate: every file must at least compile.
python -m compileall -q src

# Project linter (repro.lint): determinism, cache discipline, float and
# unit safety.  Fails on any finding not covered by an inline pragma or
# the committed baseline (lint-baseline.json).
python -m repro lint

python -m pytest -x -q
python -m pytest -x -q tests/test_engine.py
