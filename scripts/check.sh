#!/usr/bin/env bash
# Tier-1 gate: the full test suite plus the engine-equivalence property
# tests (cached results must match cache-free reconstruction exactly).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q
python -m pytest -x -q tests/test_engine.py
