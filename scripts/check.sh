#!/usr/bin/env bash
# Tier-1 gate: syntax, static analysis, then the full test suite — twice.
#
# The second pytest pass runs with --ff (failed-first): anything the
# first pass failed runs again at the *front* of the collection, in a
# fresh process.  A test that genuinely fails, fails twice; a test that
# only failed (or only passed) because an earlier test warmed a
# process-wide cache — the lru-cached scenario, the shared
# CorridorEngine, an obs session leaking out of a fixture — changes
# verdict between the passes and is exposed as ordering-dependent.
# Finally, the engine-equivalence property tests re-run standalone
# (cached results must match cache-free reconstruction exactly, even in
# a fresh interpreter).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Fast syntax gate: every file must at least compile.
python -m compileall -q src

# Project linter (repro.lint): determinism, cache discipline, float and
# unit safety, obs timing discipline, plus the whole-program flow rules
# (shared-state, transitive-determinism, layering, dead-code).  Fails on
# any finding not covered by an inline pragma or the committed baseline
# (lint-baseline.json).  Starts cold (no cache file) so the cache gate
# below has a known-cold first run.
rm -f .lint-cache.json
python -m repro lint

# Layering gate: the module import graph must stay a DAG (the layering
# rule orders the tiers; this catches any cycle, tiered or not).
python -m repro lint graph --check-cycles > /dev/null

# Incremental-lint gate: the warm (cached) run and a cache-free run must
# report byte-identical findings — the content-hash cache may only skip
# work, never change the answer.  The first lint above left a fully
# populated .lint-cache.json, so this diff is warm-vs-cold.
if ! diff <(python -m repro lint --format json) \
          <(python -m repro lint --no-cache --format json); then
    echo "check.sh: cached lint output differs from cache-free lint" >&2
    exit 1
fi

# Full suite, then the ordering-independence pass.
python -m pytest -q
python -m pytest -q --ff

# Engine equivalence in a fresh interpreter.
python -m pytest -x -q tests/test_engine.py

# Parallel determinism gate: analysis output must be byte-identical no
# matter the fan-out width (repro.parallel's ordered reduction + cache
# merge-back contract).  "timeline" covers the Fig 1/2 grid.
for cmd in funnel timeline table1; do
    if ! diff <(python -m repro "$cmd" --jobs 1) \
              <(python -m repro "$cmd" --jobs 4); then
        echo "check.sh: '$cmd' output differs between --jobs 1 and --jobs 4" >&2
        exit 1
    fi
done

# Kernel-equivalence gate: the columnar flat-array kernel must be
# byte-identical to the object kernel in every driver output, serial and
# fanned out (workers rebuild their own stores, so the fan-out exercises
# the rebuild-not-pickle protocol too).
for cmd in funnel timeline table1; do
    for jobs in 1 4; do
        if ! diff <(python -m repro "$cmd" --jobs "$jobs" --kernel columnar) \
                  <(python -m repro "$cmd" --jobs "$jobs" --kernel object); then
            echo "check.sh: '$cmd' --jobs $jobs differs between --kernel columnar and --kernel object" >&2
            exit 1
        fi
    done
done

# Serve gate: a warm corridor analytics server must survive a seeded
# concurrent loadgen mix with zero errors, serve /rankings byte-identical
# to `table1 --format json`, and keep answering after a structured 400
# (see scripts/serve_smoke.py for the full contract).
python scripts/serve_smoke.py --requests 50 --clients 4

# Incremental-evolution gate: cursor-based snapshot resolution must be
# invisible in the output.  timeline (Fig 1 + Fig 2) is diffed against
# its --no-incremental (full fingerprint rescan) twin on both the paper
# grid and the dense monthly grid, serial and fanned out.
for step in "" "--step monthly"; do
    for jobs in 1 4; do
        if ! diff <(python -m repro timeline $step --jobs "$jobs") \
                  <(python -m repro timeline $step --jobs "$jobs" --no-incremental); then
            echo "check.sh: timeline $step --jobs $jobs differs under --no-incremental" >&2
            exit 1
        fi
    done
done

# Persistent-store gate: the on-disk cache store (repro.store) may only
# change speed, never bytes.  For each driver and fan-out width, three
# runs must agree: truly cold (no store), cold-with-store (first
# --cache-dir run, populating), and warm (second --cache-dir run,
# loading what the first published).  Each command gets its own store
# so a cache populated by one driver can't mask another's cold path.
store_dir=".repro-store-check"
for cmd in funnel timeline table1; do
    for jobs in 1 4; do
        rm -rf "$store_dir"
        if ! diff <(python -m repro "$cmd" --jobs "$jobs") \
                  <(python -m repro "$cmd" --jobs "$jobs" --cache-dir "$store_dir"); then
            echo "check.sh: '$cmd' --jobs $jobs differs between no-store and cold-with-store" >&2
            exit 1
        fi
        if ! diff <(python -m repro "$cmd" --jobs "$jobs") \
                  <(python -m repro "$cmd" --jobs "$jobs" --cache-dir "$store_dir"); then
            echo "check.sh: '$cmd' --jobs $jobs differs between no-store and store-warmed" >&2
            exit 1
        fi
    done
done
rm -rf "$store_dir"

# Multi-scenario gate: every determinism contract above must hold for
# *every* registered corridor, not just the paper's.  For each scenario
# and driver: serial vs fanned-out must agree, and a store-warmed rerun
# must agree with a no-store run (per-scenario fingerprints may share
# one store directory without cross-talk).
for scenario in europe2020 tokyo-singapore; do
    rm -rf "$store_dir"
    for cmd in funnel timeline table1; do
        if ! diff <(python -m repro "$cmd" --scenario "$scenario" --jobs 1) \
                  <(python -m repro "$cmd" --scenario "$scenario" --jobs 4); then
            echo "check.sh: '$cmd --scenario $scenario' differs between --jobs 1 and --jobs 4" >&2
            exit 1
        fi
        if ! diff <(python -m repro "$cmd" --scenario "$scenario") \
                  <(python -m repro "$cmd" --scenario "$scenario" --cache-dir "$store_dir"); then
            echo "check.sh: '$cmd --scenario $scenario' differs between no-store and cold-with-store" >&2
            exit 1
        fi
        if ! diff <(python -m repro "$cmd" --scenario "$scenario") \
                  <(python -m repro "$cmd" --scenario "$scenario" --cache-dir "$store_dir"); then
            echo "check.sh: '$cmd --scenario $scenario' differs between no-store and store-warmed" >&2
            exit 1
        fi
    done
done
rm -rf "$store_dir"

# The hybrid corridor comparison must run end-to-end over every
# registered corridor (warm engines from the gates above keep it cheap).
python -m repro compare > /dev/null
