"""Serve smoke gate: boot a warm server, load it, diff it against the CLI.

Run from the repository root by ``scripts/check.sh``:

    PYTHONPATH=src python scripts/serve_smoke.py --requests 50 --clients 4

Three checks, in order:

1. A warm :class:`CorridorServer` on an ephemeral loopback port survives
   a seeded loadgen mix (every endpoint, concurrent clients) with zero
   errors.
2. The served ``/rankings`` body is byte-identical to
   ``python -m repro table1 --format json`` run in a fresh subprocess —
   the golden parity contract, checked on a live socket.
3. A structured fault (``/rankings?date=zzz``) comes back as 400 JSON
   and the server still answers ``/healthz`` afterwards.

Exit status is non-zero (with a message on stderr) on any failure, so
the shell gate needs no output parsing.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import urllib.error
import urllib.request


def fail(message: str) -> None:
    print(f"serve_smoke: {message}", file=sys.stderr)
    raise SystemExit(1)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=50)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    from repro.serve import CorridorServer, LoadProfile, run_load

    profile = LoadProfile(
        requests=args.requests, clients=args.clients, seed=args.seed
    )
    with CorridorServer() as server:
        report = run_load(server.url, profile)
        if report.errors:
            fail(f"loadgen saw {report.errors} errors: {report.describe()}")
        print(f"serve_smoke: {report.describe()}")

        with urllib.request.urlopen(
            server.url + "/rankings", timeout=60
        ) as response:
            served = response.read()
        cli = subprocess.run(
            [sys.executable, "-m", "repro", "table1", "--format", "json"],
            capture_output=True,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        if cli.returncode != 0:
            fail(f"CLI table1 failed: {cli.stderr.decode()}")
        if served != cli.stdout:
            fail("/rankings body differs from `table1 --format json` stdout")
        print("serve_smoke: /rankings == table1 --format json (byte parity)")

        try:
            urllib.request.urlopen(server.url + "/rankings?date=zzz", timeout=60)
            fail("malformed date was not rejected")
        except urllib.error.HTTPError as error:
            if error.code != 400:
                fail(f"malformed date got {error.code}, wanted 400")
            body = json.loads(error.read().decode("utf-8"))
            if body.get("error", {}).get("code") != "bad-date":
                fail(f"unexpected fault payload: {body}")
        with urllib.request.urlopen(server.url + "/healthz", timeout=60) as response:
            if json.load(response).get("status") != "ok":
                fail("server unhealthy after structured fault")
        print("serve_smoke: structured 400 served, server still healthy")


if __name__ == "__main__":
    main()
