"""§2.2 scraping funnel: 57 candidates → 29 shortlisted → 9 connected.

Paper: "this search uncovers 57 candidate licensees ... we are left with
29 licensees ... We found 9 connected networks between CME and Equinix
NY4, as of 1st April, 2020."
"""

from __future__ import annotations

from repro.analysis.funnel import run_scraping_funnel
from repro.analysis.report import format_table

from conftest import emit

PAPER_COUNTS = (57, 29, 9)


def test_bench_funnel(benchmark, scenario, output_dir, obs_metrics):
    # obs_metrics writes funnel.metrics.json: per-phase span histograms
    # (search/shortlist/connect, stitch, fiber) for every timed iteration.
    result = benchmark(
        run_scraping_funnel,
        scenario.database,
        scenario.corridor,
        scenario.snapshot_date,
    )
    rows = [
        ("candidate licensees (geo + MG/FXO)", result.counts[0], PAPER_COUNTS[0]),
        ("shortlisted (>= 11 filings)", result.counts[1], PAPER_COUNTS[1]),
        ("connected CME-NY4 on 2020-04-01", result.counts[2], PAPER_COUNTS[2]),
    ]
    emit(
        output_dir,
        "funnel.txt",
        format_table(("Stage", "Measured", "Paper"), rows, title="§2.2 funnel")
        + f"\npages scraped: {result.pages_scraped}",
    )
    assert result.counts == PAPER_COUNTS
