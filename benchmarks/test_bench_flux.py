"""§3/§4 longitudinal claims: leadership flux and the unreachable bound.

Paper: "the rankings are still in flux" and "the minimum achievable
latency of 3.955 ms has not been reached" after eight years of
competition.
"""

from __future__ import annotations

import datetime as dt

from repro.analysis.flux import race_history
from repro.analysis.report import format_table

from conftest import emit


def test_bench_flux(benchmark, scenario, output_dir):
    history = benchmark(race_history, scenario)
    rows = [
        (date.isoformat(), leader or "—", "—" if gap is None else f"{gap:+.1f}")
        for (date, leader), (_, gap) in zip(
            history.leaders, history.gap_to_bound_us()
        )
    ]
    emit(
        output_dir,
        "flux.txt",
        format_table(
            ("Snapshot", "Fastest network", "Gap to c-bound (us)"),
            rows,
            title=(
                f"The race over time — {history.leadership_changes} leadership "
                f"changes; bound {history.bound_ms:.5f} ms never reached"
            ),
        ),
    )
    # Leadership runs NTC -> JM -> NLN ("shortest path by 2018").
    leaders = dict(history.leaders)
    assert leaders[dt.date(2013, 1, 1)] == "National Tower Company"
    assert leaders[dt.date(2016, 1, 1)] == "Jefferson Microwave"
    assert leaders[dt.date(2018, 1, 1)] == "New Line Networks"
    assert history.leadership_changes == 2
    # The c-bound is approached monotonically but never reached.
    gaps = [gap for _, gap in history.gap_to_bound_us() if gap is not None]
    assert all(a >= b for a, b in zip(gaps, gaps[1:]))
    assert gaps[-1] > 0.0
