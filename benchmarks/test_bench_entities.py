"""§6 future-work extension: entity resolution across licensees.

The scenario plants §2.4's blind spot — one network filed under two
names ("Midwest Relay Partners" west of the boundary tower, "Garden
State Relay Partners" east of it, sharing a filing-contact domain).  The
resolver must find exactly that entity via shared contact domains +
complementary-link confirmation, and the geometric-only search must find
it too (with the paper's caveat that it carries more uncertainty).
"""

from __future__ import annotations

from repro.analysis.entities import complementary_pairs, resolve_entities
from repro.analysis.funnel import run_scraping_funnel
from repro.analysis.report import format_table
from repro.synth.scenario import SPLIT_NETWORK_EAST, SPLIT_NETWORK_WEST

from conftest import emit


def test_bench_entities(benchmark, scenario, output_dir):
    resolved = benchmark(
        resolve_entities,
        scenario.database,
        scenario.corridor,
        scenario.snapshot_date,
    )
    rows = [
        (
            entity.domain,
            " + ".join(entity.licensees),
            f"{entity.analysis.joint_latency_ms:.5f}",
            str(entity.analysis.complementary),
        )
        for entity in resolved
    ]
    emit(
        output_dir,
        "entities.txt",
        format_table(
            ("Shared domain", "Licensees", "Joint ms", "Complementary"),
            rows,
            title="Entity resolution: hidden multi-licensee networks",
        ),
    )

    assert len(resolved) == 1
    (entity,) = resolved
    assert set(entity.licensees) == {SPLIT_NETWORK_WEST, SPLIT_NETWORK_EAST}
    # The joint network would rank mid-pack in Table 1 — a network the
    # paper's per-licensee methodology cannot see.
    assert 3.966 < entity.analysis.joint_latency_ms < 3.970


def test_bench_entities_geometric(benchmark, scenario, output_dir):
    funnel = run_scraping_funnel(
        scenario.database, scenario.corridor, scenario.snapshot_date
    )
    candidates = [
        name
        for name in funnel.shortlisted_licensees
        if name not in funnel.connected_licensees
    ] + [SPLIT_NETWORK_EAST]

    pairs = benchmark(
        complementary_pairs,
        scenario.database,
        scenario.corridor,
        candidates,
        scenario.snapshot_date,
    )
    rows = [
        (" + ".join(p.licensees), f"{p.joint_latency_ms:.5f}") for p in pairs
    ]
    emit(
        output_dir,
        "entities_geometric.txt",
        format_table(
            ("Complementary pair", "Joint ms"),
            rows,
            title=f"Geometric complementarity over {len(candidates)} "
            "non-connected licensees",
        ),
    )
    assert any(
        set(p.licensees) == {SPLIT_NETWORK_WEST, SPLIT_NETWORK_EAST}
        for p in pairs
    )
