"""Incremental lint: warm content-hash cache vs cold full-tree analysis.

The workload is the default ``hftnetview lint`` invocation over the whole
repository — every per-file rule plus the four whole-program flow rules
(shared-state, transitive-determinism, layering, dead-code).  Cold runs
start from an absent cache file, so every file is parsed, summarised and
walked, the program graph is rebuilt, and effects are re-propagated; warm
runs replay per-file findings from the content-hash cache and short-cut
the program stage on the whole-tree fingerprint.

Pinned: warm and cold runs report identical findings/suppression counts
(asserted before any timing), and the warm run is at least ``MIN_SPEEDUP``
faster than the cold one.  Results land in ``benchmarks/output/lint.txt``
and the consolidated ``BENCH_PR7.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.lint import lint_paths, load_config
from repro.lint.flow.cache import FlowCache

from conftest import emit

#: The warm (cached) lint must beat the cold lint by this much (the PR's
#: acceptance bar).
MIN_SPEEDUP = 3.0

#: Runs per mode; the best (minimum) wall time of each is compared, the
#: noise-robust estimator for a fixed workload.
TRIALS = 3

REPO_ROOT = Path(__file__).parent.parent

BENCH_JSON = REPO_ROOT / "BENCH_PR7.json"


def _lint_once(config, cache_path: Path):
    cache = FlowCache(cache_path)
    result = lint_paths(config=config, cache=cache)
    cache.save()
    return result


def _best_of(trials, run):
    best = float("inf")
    result = None
    for _ in range(trials):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_bench_lint_incremental(benchmark, tmp_path, output_dir):
    config = load_config(root=REPO_ROOT)
    cache_path = tmp_path / "lint-cache.json"

    def cold():
        cache_path.unlink(missing_ok=True)
        return _lint_once(config, cache_path)

    def warm():
        return _lint_once(config, cache_path)

    # Equivalence contract FIRST: the cached run must report exactly what
    # the cold run reports before any speed claim means anything.
    cold_result = cold()
    warm_result = warm()
    assert warm_result.findings == cold_result.findings
    assert warm_result.suppressed == cold_result.suppressed
    assert warm_result.files == cold_result.files

    cold_result, cold_s = _best_of(TRIALS, cold)
    warm_result, warm_s = _best_of(TRIALS, warm)
    speedup = cold_s / warm_s
    cache_bytes = cache_path.stat().st_size

    # pytest-benchmark pins the steady state of the warm (cached) lint.
    benchmark(warm)

    record = {
        "bench": "full-tree lint, warm content-hash cache vs cold",
        "files": len(cold_result.files),
        "findings": len(cold_result.findings),
        "suppressed": cold_result.suppressed,
        "trials": TRIALS,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 2),
        "cache_bytes": cache_bytes,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"full-tree lint · {len(cold_result.files)} files · all per-file + "
        f"program rules · best of {TRIALS}",
        "",
        f"{'mode':22s} {'wall':>10s} {'speedup':>9s}",
        f"{'cold (no cache)':22s} {cold_s * 1e3:8.1f}ms {'1.00x':>9s}",
        f"{'warm (cached)':22s} {warm_s * 1e3:8.1f}ms {speedup:8.2f}x",
        "",
        f"cache file: {cache_bytes / 1024:.0f} KiB "
        f"(per-file findings + pragmas + flow summaries, keyed by content "
        f"hash and rule-config fingerprint)",
        "",
        "cold parses every file, extracts per-function effect summaries,",
        "builds the whole-program call graph and propagates effects to",
        "fixpoint; warm replays per-file findings from the cache and skips",
        "the program stage entirely when the tree fingerprint matches.",
        "findings are identical in both modes (asserted above; the",
        "warm-vs-cold diff is also gated in scripts/check.sh).",
    ]
    emit(output_dir, "lint.txt", "\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"warm lint only {speedup:.2f}x faster than cold "
        f"({cold_s * 1e3:.1f} ms -> {warm_s * 1e3:.1f} ms)"
    )
