"""Cold start with a persistent store vs a truly cold start (the PR 9 bar).

The workload is a "process boot": construct a :class:`CorridorEngine`
over the paper scenario and answer the full snapshot/route sweep a
driver like ``table1`` performs — every connected network's snapshot and
best CME→NY4 route on the paper grid.  Truly cold pays the whole
reconstruction; cold-with-store pays one ``pickle.loads`` of the entry a
previous run published (engine construction is inside the timed region,
because that is where the store loads).

Scenario calibration (building the synthetic ULS database) is *outside*
both timed regions — it dominates CLI wall time and the store neither
can nor should accelerate it; the store's job is the engine work.

Pinned: the store-warmed boot answers the sweep byte-identically to the
cold rebuild (asserted before any timing), and is at least
``MIN_SPEEDUP`` faster.  Results land in ``benchmarks/output/store.txt``
and the consolidated ``BENCH_PR9.json`` at the repository root.
"""

from __future__ import annotations

import datetime as dt
import json
import time
from pathlib import Path

from repro.core.engine import CorridorEngine
from repro.store import CacheStore

from conftest import emit

#: A store-warmed boot must beat the truly cold boot by this much (the
#: PR's acceptance bar).
MIN_SPEEDUP = 3.0

#: Boots per mode; best (minimum) wall time wins, the noise-robust
#: estimator for a fixed workload.
TRIALS = 3

#: The quarterly evolution grid the timeline driver sweeps (denser than
#: the annual paper endpoints, so snapshot work dominates the fixed
#: engine-construction overhead both modes share).
DATES = tuple(
    dt.date(year, month, 1)
    for year in range(2016, 2021)
    for month in (1, 4, 7, 10)
    if (year, month) <= (2020, 4)
)

BENCH_JSON = Path(__file__).parent.parent / "BENCH_PR9.json"


def _boot_and_sweep(scenario, store):
    """One process boot: fresh engine (store-attached or not) + sweep."""
    engine = CorridorEngine(scenario.database, scenario.corridor, store=store)
    results = []
    for name in scenario.connected_names:
        for date in DATES:
            results.append(repr(engine.snapshot(name, date)))
        results.append(
            repr(engine.route(name, scenario.snapshot_date, "CME", "NY4"))
        )
    return engine, results


def _best_of(trials, scenario, store):
    best = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        _boot_and_sweep(scenario, store)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_store_warm_boot_vs_cold(
    benchmark, scenario, output_dir, tmp_path
):
    store = CacheStore(tmp_path)

    # Publish the entry the warmed boots will load, exactly as a prior
    # `--cache-dir` run would have.
    seed_engine, cold_results = _boot_and_sweep(scenario, store)
    seed_engine.checkpoint()
    entry = store.stat()[0]

    # Equivalence contract FIRST: a store-warmed boot answers the whole
    # sweep byte-identically to the cold rebuild, without a single
    # snapshot rebuild (misses stay zero).
    warmed_engine, warmed_results = _boot_and_sweep(scenario, store)
    assert warmed_results == cold_results
    assert warmed_engine.stats.snapshot.misses == 0

    cold_s = _best_of(TRIALS, scenario, False)
    warm_s = _best_of(TRIALS, scenario, store)
    speedup = cold_s / warm_s

    # pytest-benchmark pins the steady state of the store-warmed boot.
    benchmark(_boot_and_sweep, scenario, store)

    record = {
        "bench": "engine boot + driver sweep, store-warmed vs truly cold",
        "networks": len(scenario.connected_names),
        "dates": len(DATES),
        "trials": TRIALS,
        "entry_bytes": entry.size_bytes,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 2),
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"engine boot + sweep · {len(scenario.connected_names)} networks × "
        f"{len(DATES)} dates · best of {TRIALS}",
        "",
        f"{'boot mode':22s} {'wall':>10s} {'speedup':>9s}",
        f"{'truly cold':22s} {cold_s * 1e3:8.1f}ms {'1.00x':>9s}",
        f"{'cold with store':22s} {warm_s * 1e3:8.1f}ms {speedup:8.2f}x",
        "",
        f"store entry: {entry.size_bytes / 1024:.0f} KiB "
        f"({entry.fingerprint[:16]}…)",
        "",
        "the truly cold boot re-stitches every network snapshot from the",
        "ULS database; the store-warmed boot unpickles one content-",
        "addressed entry published by the previous run and answers the",
        "same sweep byte-identically (asserted above, diff-gated across",
        "CLI modes in scripts/check.sh).",
    ]
    emit(output_dir, "store.txt", "\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"store-warmed boot only {speedup:.2f}x faster than truly cold "
        f"({cold_s * 1e3:.1f} ms -> {warm_s * 1e3:.1f} ms)"
    )
