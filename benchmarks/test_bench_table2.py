"""Table 2: the fastest three networks per corridor path, with geodesic
distances between the data centers."""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.analysis.tables import table2_top_networks

from conftest import emit

PAPER = {
    ("CME", "NY4"): (
        1186,
        [
            ("New Line Networks", 3.96171),
            ("Pierce Broadband", 3.96209),
            ("Jefferson Microwave", 3.96597),
        ],
    ),
    ("CME", "NYSE"): (
        1174,
        [
            ("New Line Networks", 3.93209),
            ("Jefferson Microwave", 3.94021),
            ("Blueline Comm", 3.95866),
        ],
    ),
    ("CME", "NASDAQ"): (
        1176,
        [
            ("New Line Networks", 3.92728),
            ("Webline Holdings", 3.92805),
            ("Jefferson Microwave", 3.92828),
        ],
    ),
}


def test_bench_table2(benchmark, scenario, output_dir):
    results = benchmark(table2_top_networks, scenario)
    rows = []
    for path_ranking in results:
        key = (path_ranking.source, path_ranking.target)
        paper_km, paper_top = PAPER[key]
        for rank, (entry, (paper_name, paper_ms)) in enumerate(
            zip(path_ranking.top, paper_top), start=1
        ):
            rows.append(
                (
                    f"{key[0]}-{key[1]}",
                    f"{path_ranking.geodesic_km:.0f}/{paper_km}",
                    rank,
                    entry.licensee,
                    paper_name,
                    f"{entry.latency_ms:.5f}",
                    f"{paper_ms:.5f}",
                )
            )
    emit(
        output_dir,
        "table2.txt",
        format_table(
            ("Path", "km/paper", "Rank", "Licensee", "paper", "ms", "paper"),
            rows,
            title="Table 2: fastest networks per path, 2020-04-01",
        ),
    )
    for path_ranking in results:
        _, paper_top = PAPER[(path_ranking.source, path_ranking.target)]
        assert [e.licensee for e in path_ranking.top] == [n for n, _ in paper_top]
        for entry, (_, paper_ms) in zip(path_ranking.top, paper_top):
            assert abs(entry.latency_ms - paper_ms) < 5e-5
