"""Parallel grid replay: serial sweep discipline vs GridSession fan-out.

The workload is the warm timeline+ablation grid the analysis drivers
replay constantly: the featured licensees' Fig 1 timelines at default
parameters plus the same timelines under a stitch-tolerance sweep.  The
serial leg runs the pre-parallel sweep discipline — one fresh, unseeded
engine per knob value, rebuilt every replay.  The ``--jobs N`` legs run
the same grid through one :class:`~repro.parallel.grid.GridSession`,
whose pooled, geodesic-seeded sibling engines persist across replays and
whose worker cache deltas merge back into the parent.

Two assertions are pinned: the fan-out legs return exactly the serial
results (the determinism contract), and the 4-job leg beats serial by
``MIN_SPEEDUP``.  On a single-CPU host the backend resolves to inline,
so the measured win is the cache machinery itself (seeding + sibling
pooling + merge-back); on multi-core hosts the process pool stacks real
concurrency on top.  Results land in ``benchmarks/output/parallel.txt``
and the consolidated ``BENCH_PR4.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.timeline import yearly_snapshot_dates
from repro.parallel import GridSession, resolve_backend, usable_cpu_count

from conftest import emit

#: The 4-worker replay must beat the serial sweep by at least this much.
MIN_SPEEDUP = 2.0

REPLAYS = 3
NAMES = ("Webline Holdings", "New Line Networks", "Pierce Broadband")
STITCH_KNOBS_M = (60.0, 90.0, 120.0, 150.0)

BENCH_JSON = Path(__file__).parent.parent / "BENCH_PR4.json"


def _series(engine, name, dates):
    return tuple(point.latency_ms for point in engine.timeline(name, dates))


def _sweep_task(ctx, item):
    name, dates, _knob = item
    return _series(ctx.engine, name, dates)


def _base_task(ctx, item):
    name, dates = item
    return _series(ctx.engine, name, dates)


def _serial_replay(engine, dates):
    """The pre-parallel code path: parent engine for the default grid,
    one fresh unseeded engine per sweep knob (never shared, never kept)."""
    base = [_series(engine, name, dates) for name in NAMES]
    sweep = []
    for knob in STITCH_KNOBS_M:
        knob_engine = engine.with_params(stitch_tolerance_m=knob)
        sweep.extend(_series(knob_engine, name, dates) for name in NAMES)
    return base, sweep


def _session_replay(session, dates):
    base = session.map(
        _base_task, [(name, dates) for name in NAMES], label="bench-base"
    )
    sweep = session.map(
        _sweep_task,
        [(name, dates, knob) for knob in STITCH_KNOBS_M for name in NAMES],
        params=lambda item: {"stitch_tolerance_m": item[2]},
        label="bench-sweep",
    )
    return base, sweep


def _time_serial(engine, dates):
    start = time.perf_counter()
    for _ in range(REPLAYS):
        result = _serial_replay(engine, dates)
    return result, time.perf_counter() - start


def _time_session(engine, dates, jobs):
    with GridSession(engine, jobs) as session:
        start = time.perf_counter()
        for _ in range(REPLAYS):
            result = _session_replay(session, dates)
        elapsed = time.perf_counter() - start
    return result, elapsed


def test_bench_parallel_grid(benchmark, scenario, engine, output_dir):
    dates = yearly_snapshot_dates()
    engine.timeline(NAMES[0], dates)  # ensure the parent grid is warm

    serial_result, serial_s = _time_serial(engine, dates)
    jobs2_result, jobs2_s = _time_session(engine, dates, 2)
    jobs4_result, jobs4_s = _time_session(engine, dates, 4)

    # Determinism contract: fan-out changes wall time, never a value.
    assert jobs2_result == serial_result
    assert jobs4_result == serial_result

    # pytest-benchmark pins the steady state of the 4-job session.
    with GridSession(engine, 4) as session:
        _session_replay(session, dates)  # build + seed the sibling pool
        benchmark(_session_replay, session, dates)

    speedup2 = serial_s / jobs2_s
    speedup4 = serial_s / jobs4_s
    backend = resolve_backend(4, "auto")

    record = {
        "bench": "warm timeline+ablation grid",
        "replays": REPLAYS,
        "licensees": len(NAMES),
        "sweep_knobs": len(STITCH_KNOBS_M),
        "backend": backend,
        "usable_cpus": usable_cpu_count(),
        "jobs1_s": round(serial_s, 4),
        "jobs2_s": round(jobs2_s, 4),
        "jobs4_s": round(jobs4_s, 4),
        "speedup2": round(speedup2, 2),
        "speedup4": round(speedup4, 2),
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"warm timeline+ablation grid · {REPLAYS} replays · "
        f"{len(NAMES)} licensees x {len(dates)} dates · "
        f"{len(STITCH_KNOBS_M)}-knob stitch sweep",
        f"backend={backend}  usable_cpus={usable_cpu_count()}",
        "",
        f"{'mode':10s} {'wall':>10s} {'speedup':>9s}",
        f"{'--jobs 1':10s} {serial_s * 1e3:8.1f}ms {'1.00x':>9s}",
        f"{'--jobs 2':10s} {jobs2_s * 1e3:8.1f}ms {speedup2:8.2f}x",
        f"{'--jobs 4':10s} {jobs4_s * 1e3:8.1f}ms {speedup4:8.2f}x",
        "",
        "serial rebuilds one unseeded engine per sweep knob per replay;",
        "the session pools geodesic-seeded siblings and merges worker",
        "cache deltas back, so replays after the first are cache hits.",
    ]
    emit(output_dir, "parallel.txt", "\n".join(lines))

    assert speedup4 >= MIN_SPEEDUP, (
        f"4-job grid only {speedup4:.2f}x faster than serial "
        f"({serial_s * 1e3:.1f} ms -> {jobs4_s * 1e3:.1f} ms)"
    )
