"""Fig 4(a): CDFs of tower-to-tower link lengths on near-optimal
CME–NY4 paths, WH vs NLN.

Paper: "The median length for WH (36 km) is 26% lower than NLN
(48.5 km)".
"""

from __future__ import annotations

from repro.analysis.figures import fig4a_link_length_cdfs
from repro.analysis.report import format_table
from repro.metrics.cdf import EmpiricalCdf
from repro.viz.figdata import write_cdf_dat
from repro.viz.paperfigs import fig4a_chart

from conftest import emit

PAPER_MEDIANS = {"Webline Holdings": 36.0, "New Line Networks": 48.5}


def test_bench_fig4a(benchmark, scenario, output_dir):
    samples = benchmark(fig4a_link_length_cdfs, scenario)
    rows = []
    for name, lengths in samples.items():
        cdf = EmpiricalCdf(lengths)
        rows.append(
            (
                name,
                len(lengths),
                f"{cdf.median:.1f}",
                f"{PAPER_MEDIANS[name]:.1f}",
                f"{cdf.quantile(0.9):.1f}",
            )
        )
    emit(
        output_dir,
        "fig4a.txt",
        format_table(
            ("Network", "n links", "median km", "paper", "p90 km"),
            rows,
            title="Fig 4a: link lengths on near-optimal CME-NY4 paths",
        ),
    )
    write_cdf_dat(
        output_dir / "fig4a.dat",
        {("WH" if "Webline" in k else "NLN"): v for k, v in samples.items()},
        header="Fig 4a: CDF of MW link lengths (km)",
    )
    fig4a_chart(samples).render(output_dir / "fig4a.svg")

    wh = EmpiricalCdf(samples["Webline Holdings"]).median
    nln = EmpiricalCdf(samples["New Line Networks"]).median
    assert abs(wh - 36.0) < 2.5
    assert abs(nln - 48.5) < 2.5
    assert (nln - wh) / nln > 0.18  # paper: WH ~26% lower
