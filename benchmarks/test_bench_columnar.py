"""Cold reconstruction: the columnar kernel vs the object kernel.

The workload is the cold half of every analysis driver: stitch, link and
fiber-convert all ~60 corridor licensees at the paper's snapshot date
with nothing cached (engine caches cleared between replays).  The warm
path is already covered by the engine benchmarks; this one isolates what
the flat-array kernel changes — the per-snapshot build cost itself.

The columnar store is a per-database-generation artefact, built once and
reused by every reconstruction at that generation; its build time is
measured and reported separately (on a fresh unpickled database, the way
a parallel worker pays it), *not* amortised into the per-sweep numbers —
and also not charged to them, since every real driver builds exactly one
store and then runs hundreds of snapshots over it.

Pinned: both kernels produce element-wise identical networks for every
licensee (asserted before any timing), and the columnar cold sweep is at
least ``MIN_SPEEDUP`` faster than the object sweep.  Results land in
``benchmarks/output/columnar.txt`` and the consolidated ``BENCH_PR6.json``
at the repository root.
"""

from __future__ import annotations

import datetime as dt
import json
import pickle
import time
from pathlib import Path

from repro.core.engine import CorridorEngine

from conftest import emit

#: The columnar cold sweep must beat the object cold sweep by this much
#: (the PR's acceptance bar).
MIN_SPEEDUP = 3.0

#: Cold sweeps per kernel; the best (minimum) wall time of each is
#: compared, which is the noise-robust estimator for a fixed workload.
TRIALS = 5

SNAPSHOT_DATE = dt.date(2020, 4, 1)

BENCH_JSON = Path(__file__).parent.parent / "BENCH_PR6.json"


def _cold_sweep(engine, names, on_date):
    """Reconstruct every licensee from scratch: the cold path, isolated."""
    engine.clear_caches()
    return [engine.snapshot(name, on_date) for name in names]


def _best_of(trials, engine, names, on_date):
    best = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        networks = _cold_sweep(engine, names, on_date)
        best = min(best, time.perf_counter() - start)
    return networks, best


def test_bench_columnar_cold_reconstruction(benchmark, scenario, output_dir):
    names = scenario.database.licensee_names()

    columnar = CorridorEngine(
        scenario.database, scenario.corridor, kernel="columnar"
    )
    obj = CorridorEngine(scenario.database, scenario.corridor, kernel="object")

    # Store build: a per-generation one-time cost, measured on a fresh
    # database the way a parallel worker pays it (stores are never
    # pickled; workers rebuild from the shipped records).
    fresh_database = pickle.loads(pickle.dumps(scenario.database))
    build_start = time.perf_counter()
    store = fresh_database.columnar_store()
    store_build_s = time.perf_counter() - build_start

    # Equivalence contract FIRST: the kernels must agree element-wise on
    # every licensee before any speed claim means anything.
    columnar_networks = _cold_sweep(columnar, names, SNAPSHOT_DATE)
    object_networks = _cold_sweep(obj, names, SNAPSHOT_DATE)
    for col_net, obj_net in zip(columnar_networks, object_networks):
        assert col_net.licensee == obj_net.licensee
        assert col_net.towers == obj_net.towers
        assert list(col_net.links) == list(obj_net.links)
        assert list(col_net.fiber_tails) == list(obj_net.fiber_tails)

    _, columnar_s = _best_of(TRIALS, columnar, names, SNAPSHOT_DATE)
    _, object_s = _best_of(TRIALS, obj, names, SNAPSHOT_DATE)
    speedup = object_s / columnar_s

    # pytest-benchmark pins the steady state of the columnar cold sweep.
    benchmark(_cold_sweep, columnar, names, SNAPSHOT_DATE)

    record = {
        "bench": "cold reconstruction sweep, columnar vs object kernel",
        "date": SNAPSHOT_DATE.isoformat(),
        "licensees": len(names),
        "trials": TRIALS,
        "object_s": round(object_s, 4),
        "columnar_s": round(columnar_s, 4),
        "speedup": round(speedup, 2),
        "store_build_s": round(store_build_s, 4),
        "store_licenses": len(store.license_ids),
        "store_endpoints": len(store.ep_lat),
        "store_paths": len(store.path_tx),
        "store_solutions": len(store.solutions),
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"cold reconstruction sweep · {len(names)} licensees @ "
        f"{SNAPSHOT_DATE} · best of {TRIALS} (caches cleared each sweep)",
        "",
        f"{'kernel':22s} {'wall':>10s} {'speedup':>9s}",
        f"{'object':22s} {object_s * 1e3:8.1f}ms {'1.00x':>9s}",
        f"{'columnar':22s} {columnar_s * 1e3:8.1f}ms {speedup:8.2f}x",
        "",
        f"columnar store build (once per database generation): "
        f"{store_build_s * 1e3:.1f}ms — "
        f"{len(store.license_ids)} licenses, {len(store.ep_lat)} endpoints, "
        f"{len(store.path_tx)} paths, {len(store.solutions)} precomputed "
        f"Vincenty solutions",
        "",
        "the object kernel walks License -> TowerLocation -> MicrowavePath",
        "graphs and solves Vincenty per probe; the columnar kernel scans",
        "flat array columns, reads probe/link distances out of the store's",
        "uid-keyed solution table, and batch-solves the fiber survivors in",
        "one inverse_batch call.  outputs are element-wise identical",
        "(asserted above, diff-gated in scripts/check.sh).",
    ]
    emit(output_dir, "columnar.txt", "\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"columnar cold sweep only {speedup:.2f}x faster than object "
        f"({object_s * 1e3:.1f} ms -> {columnar_s * 1e3:.1f} ms)"
    )
