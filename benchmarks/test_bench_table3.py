"""Table 3: alternate path availability, NLN vs WH, per corridor path."""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.analysis.tables import table3_apa

from conftest import emit

PAPER = {
    ("CME", "NY4"): {"New Line Networks": 54, "Webline Holdings": 85},
    ("CME", "NYSE"): {"New Line Networks": 58, "Webline Holdings": 92},
    ("CME", "NASDAQ"): {"New Line Networks": 30, "Webline Holdings": 80},
}


def test_bench_table3(benchmark, scenario, output_dir):
    results = benchmark(table3_apa, scenario)
    rows = []
    for row in results:
        paper = PAPER[row.path]
        rows.append(
            (
                f"{row.path[0]}-{row.path[1]}",
                f"{row.values['New Line Networks']}%",
                f"{paper['New Line Networks']}%",
                f"{row.values['Webline Holdings']}%",
                f"{paper['Webline Holdings']}%",
            )
        )
    emit(
        output_dir,
        "table3.txt",
        format_table(
            ("Path", "NLN", "paper", "WH", "paper"),
            rows,
            title="Table 3: alternate path availability",
        ),
    )
    for row in results:
        paper = PAPER[row.path]
        # Shape: WH dominates NLN on every path, values within 2pp.
        assert row.values["Webline Holdings"] > row.values["New Line Networks"]
        for name, value in row.values.items():
            assert abs(value - paper[name]) <= 2
