"""Ablations over the methodology's modelling knobs (DESIGN.md §4).

* APA slack factor (the paper's 5%),
* fiber attachment policy ("last tower" vs all towers within 50 km),
* per-tower repeater overhead (§3's JM-overtakes-NLN crossover at ~1.4 µs),
* endpoint stitching tolerance,
* fiber-tail radius.
"""

from __future__ import annotations

from repro.analysis.ablations import (
    apa_slack_sweep,
    fiber_mode_comparison,
    fiber_radius_sweep,
    per_tower_overhead_crossover,
    stitch_tolerance_sweep,
)
from repro.analysis.report import format_table

from conftest import emit


def test_bench_apa_slack(benchmark, scenario, output_dir):
    sweep = benchmark(apa_slack_sweep, scenario)
    emit(
        output_dir,
        "ablation_apa_slack.txt",
        format_table(
            ("slack", "NLN APA %"),
            [(f"{s:.2f}", v) for s, v in sorted(sweep.items())],
            title="Ablation: APA vs latency-slack factor",
        ),
    )
    values = [sweep[s] for s in sorted(sweep)]
    assert all(a <= b for a, b in zip(values, values[1:]))
    assert sweep[1.05] == 54


def test_bench_fiber_mode(benchmark, scenario, output_dir):
    comparison = benchmark(fiber_mode_comparison, scenario)
    emit(
        output_dir,
        "ablation_fiber_mode.txt",
        format_table(
            ("fiber attachment", "NLN APA %"),
            sorted(comparison.items()),
            title="Ablation: 'last tower' vs all-towers fiber tails",
        ),
    )
    assert comparison["nearest"] == 54
    assert comparison["all"] > comparison["nearest"]


def test_bench_overhead_crossover(benchmark, scenario, output_dir):
    results = benchmark(per_tower_overhead_crossover, scenario)
    emit(
        output_dir,
        "ablation_overhead.txt",
        format_table(
            ("overhead us/tower", "leader", "NLN ms", "JM ms"),
            [
                (
                    f"{r.overhead_us:.1f}",
                    r.leader,
                    f"{r.latency_ms['New Line Networks']:.5f}",
                    f"{r.latency_ms['Jefferson Microwave']:.5f}",
                )
                for r in results
            ],
            title="Ablation: per-tower overhead crossover (paper §3: ~1.4 us)",
        ),
    )
    leaders = {r.overhead_us: r.leader for r in results}
    assert leaders[0.0] == "New Line Networks"
    assert leaders[3.0] == "Jefferson Microwave"
    # The flip happens between 1.0 and 2.0 us — bracketing the paper's 1.4.
    assert leaders[1.0] == "New Line Networks"
    assert leaders[2.0] == "Jefferson Microwave"


def test_bench_stitch_tolerance(benchmark, scenario, output_dir):
    sweep = benchmark(stitch_tolerance_sweep, scenario)
    emit(
        output_dir,
        "ablation_stitch.txt",
        format_table(
            ("tolerance m", "towers", "connected"),
            [
                (f"{tol:g}", towers, connected)
                for tol, (towers, connected) in sorted(sweep.items())
            ],
            title="Ablation: stitching tolerance",
        ),
    )
    assert sweep[30.0][1] is True  # the default works


def test_bench_fiber_radius(benchmark, scenario, output_dir):
    sweep = benchmark(fiber_radius_sweep, scenario)
    emit(
        output_dir,
        "ablation_fiber_radius.txt",
        format_table(
            ("fiber reach km", "connected networks"),
            sorted(sweep.items()),
            title="Ablation: fiber-tail radius vs connectivity",
        ),
    )
    counts = [sweep[r] for r in sorted(sweep)]
    assert all(a <= b for a, b in zip(counts, counts[1:]))
    assert sweep[50.0] == 9


def test_bench_ranking_stability(benchmark, scenario, output_dir):
    """§6: bound what radio-technology differences could do to Table 1."""
    from repro.analysis.stability import ranking_stability

    report = benchmark(ranking_stability, scenario, 3.0)
    rows = [
        (flip.faster_at_zero, flip.slower_at_zero, f"{flip.crossover_us:.2f}")
        for flip in report.flips
    ]
    emit(
        output_dir,
        "ablation_stability.txt",
        format_table(
            ("Faster at 0 overhead", "Overtakes at", "crossover us/tower"),
            rows,
            title=(
                "Ranking flips for per-tower overhead in (0, 3] us — "
                f"order at 0: {' > '.join(report.order_at_zero[:3])}; "
                f"order at 3 us: {' > '.join(report.order_at_max[:3])}"
            ),
        ),
    )
    # The paper's JM-over-NLN crossover at ~1.4 us is among the flips.
    jm_flip = next(
        flip
        for flip in report.flips
        if {flip.faster_at_zero, flip.slower_at_zero}
        == {"New Line Networks", "Jefferson Microwave"}
    )
    assert abs(jm_flip.crossover_us - 1.42) < 0.05
    assert report.order_at_max[0] == "Jefferson Microwave"
