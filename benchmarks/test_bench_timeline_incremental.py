"""Dense timeline replay: incremental snapshot evolution vs full rescans.

The workload is the dense monthly 2013–2020 Fig-1 grid (88 dates) for the
five featured licensees — the corridor-monitoring loop a production
pipeline replays constantly.  Both engines are warmed once (every network
stitched, every route cached), so the measured difference is pure
resolution cost: the incremental engine answers each point with a cursor
diff (a bisect over the licensee's temporal index) while the full engine
re-scans every filing of the licensee to recompute the active-set
fingerprint, exactly as the pre-index pipeline did.

Pinned: the two engines produce element-wise identical timelines, and the
incremental replay is at least ``MIN_SPEEDUP`` faster warm.  Results land
in ``benchmarks/output/timeline_incremental.txt`` and the consolidated
``BENCH_PR5.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.engine import CorridorEngine
from repro.core.timeline import dense_date_grid

from conftest import emit

#: Warm incremental replays must beat warm full-rescan replays by this much.
MIN_SPEEDUP = 3.0

REPLAYS = 5

BENCH_JSON = Path(__file__).parent.parent / "BENCH_PR5.json"


def _replay(engine, names, dates):
    return tuple(
        tuple(point.latency_ms for point in engine.timeline(name, dates))
        for name in names
    )


def _time_replays(engine, names, dates):
    start = time.perf_counter()
    for _ in range(REPLAYS):
        result = _replay(engine, names, dates)
    return result, time.perf_counter() - start


def test_bench_timeline_incremental(benchmark, scenario, output_dir):
    names = scenario.featured_names
    dates = dense_date_grid("monthly")

    incremental = CorridorEngine(
        scenario.database, scenario.corridor, incremental=True
    )
    full = CorridorEngine(
        scenario.database, scenario.corridor, incremental=False
    )
    # Cold pass: stitch every network, fill both engines' caches.
    _replay(incremental, names, dates)
    _replay(full, names, dates)

    incremental_result, incremental_s = _time_replays(incremental, names, dates)
    full_result, full_s = _time_replays(full, names, dates)

    # Equivalence contract: evolution changes wall time, never a value.
    assert incremental_result == full_result

    # pytest-benchmark pins the steady state of the incremental replay.
    benchmark(_replay, incremental, names, dates)

    speedup = full_s / incremental_s
    stats = incremental.stats
    points = len(names) * len(dates)

    record = {
        "bench": "warm dense timeline, incremental vs full rescan",
        "replays": REPLAYS,
        "licensees": len(names),
        "dates": len(dates),
        "grid": "monthly 2013-01..2020-04",
        "full_s": round(full_s, 4),
        "incremental_s": round(incremental_s, 4),
        "speedup": round(speedup, 2),
        "incremental_share": round(stats.incremental_share, 4),
        "index_events": stats.index_events,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"warm dense timeline · {REPLAYS} replays · "
        f"{len(names)} licensees x {len(dates)} monthly dates "
        f"({points} points/replay)",
        "",
        f"{'mode':22s} {'wall':>10s} {'speedup':>9s}",
        f"{'full rescan':22s} {full_s * 1e3:8.1f}ms {'1.00x':>9s}",
        f"{'incremental cursors':22s} {incremental_s * 1e3:8.1f}ms "
        f"{speedup:8.2f}x",
        "",
        f"incremental resolutions: {stats.snapshot_incremental} "
        f"({stats.incremental_share:.1%} of {stats.snapshot_incremental + stats.snapshot_full}) · "
        f"temporal-index events: {stats.index_events}",
        "",
        "full mode recomputes the active-set fingerprint by scanning every",
        "filing of the licensee at every point; incremental mode evolves a",
        "per-licensee cursor through the temporal index, so an eventless",
        "month costs one bisect and reuses the cached network outright.",
    ]
    emit(output_dir, "timeline_incremental.txt", "\n".join(lines))

    assert stats.incremental_share > 0.80
    assert speedup >= MIN_SPEEDUP, (
        f"incremental replay only {speedup:.2f}x faster than full rescan "
        f"({full_s * 1e3:.1f} ms -> {incremental_s * 1e3:.1f} ms)"
    )
