"""Table 1: connected networks ordered by estimated one-way CME–NY4
latency, with APA and shortest-path tower counts (as of 2020-04-01)."""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.analysis.tables import table1_connected_networks

from conftest import emit

#: licensee -> (latency ms, APA %, #towers) as printed in the paper.
PAPER = {
    "New Line Networks": (3.96171, 54, 25),
    "Pierce Broadband": (3.96209, 7, 29),
    "Jefferson Microwave": (3.96597, 73, 22),
    "Blueline Comm": (3.96940, 0, 29),
    "Webline Holdings": (3.97157, 85, 27),
    "AQ2AT": (4.01101, 0, 29),
    "Wireless Internetwork": (4.12246, 0, 33),
    "GTT Americas": (4.24241, 0, 28),
    "SW Networks": (4.44530, 0, 74),
}


def test_bench_table1(benchmark, scenario, output_dir):
    rankings = benchmark(table1_connected_networks, scenario)
    rows = []
    for ranking in rankings:
        paper_latency, paper_apa, paper_towers = PAPER[ranking.licensee]
        rows.append(
            (
                ranking.licensee,
                f"{ranking.latency_ms:.5f}",
                f"{paper_latency:.5f}",
                ranking.apa_percent,
                paper_apa,
                ranking.tower_count,
                paper_towers,
            )
        )
    emit(
        output_dir,
        "table1.txt",
        format_table(
            (
                "Licensee",
                "Latency (ms)",
                "paper",
                "APA %",
                "paper",
                "#Towers",
                "paper",
            ),
            rows,
            title="Table 1: connected networks, CME-NY4, 2020-04-01",
        ),
    )
    # Ordering and headline magnitudes must match the paper.
    assert [r.licensee for r in rankings] == list(PAPER)
    for ranking in rankings:
        assert abs(ranking.latency_ms - PAPER[ranking.licensee][0]) < 5e-5
        assert ranking.tower_count == PAPER[ranking.licensee][2]
