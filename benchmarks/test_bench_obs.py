"""Observability overhead: the disabled fast path is ~free.

Two measurements back the obs layer's core promise (instrumentation
costs nothing unless switched on):

* the disabled ``obs.span(...)`` call — one attribute check returning a
  shared no-op object — costs nanoseconds (benchmarked directly);
* on the warm-engine timeline sweep, the *estimated* disabled-path tax
  (spans entered per sweep x cost per disabled span) is under 2% of the
  sweep's wall time, and actually *enabling* observation stays within a
  small constant factor.

Results land in ``benchmarks/output/obs_overhead.txt``.
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.timeline import yearly_snapshot_dates

from conftest import emit

#: Ceiling for one disabled span() call (generous: measured ~100 ns).
MAX_NOOP_NS = 2_000.0

#: Estimated disabled-path share of the warm sweep's wall time.
MAX_DISABLED_OVERHEAD = 0.02

#: Enabling observation may not blow up the warm sweep (loose: the warm
#: path is microseconds per query, so sink work is comparatively large).
MAX_ENABLED_RATIO = 3.0

_CALLS_PER_ROUND = 1_000


def _noop_spans() -> None:
    for _ in range(_CALLS_PER_ROUND):
        with obs.span("bench.noop"):
            pass


def _sweep(scenario, engine, dates):
    return {
        name: engine.timeline(name, dates)
        for name in scenario.featured_names
    }


def test_bench_noop_span(benchmark):
    assert not obs.is_enabled()
    benchmark(_noop_spans)
    if benchmark.enabled:  # stats don't exist under --benchmark-disable
        per_call_ns = benchmark.stats.stats.mean / _CALLS_PER_ROUND * 1e9
        assert per_call_ns < MAX_NOOP_NS, (
            f"disabled span() costs {per_call_ns:.0f} ns/call"
        )


def test_bench_warm_sweep_overhead(benchmark, scenario, engine, output_dir):
    dates = yearly_snapshot_dates()
    _sweep(scenario, engine, dates)  # warm every snapshot/route cache

    # Disabled: what production analyses pay for carrying instrumentation.
    start = time.perf_counter()
    disabled_result = _sweep(scenario, engine, dates)
    disabled_s = time.perf_counter() - start

    # Enabled: the same sweep observed (counts spans as a side effect).
    with obs.capture() as cap:
        start = time.perf_counter()
        enabled_result = _sweep(scenario, engine, dates)
        enabled_s = time.perf_counter() - start
    spans_entered = len(cap.spans)

    benchmark(_sweep, scenario, engine, dates)
    assert enabled_result == disabled_result

    # Estimate the disabled-path tax: every span the enabled sweep entered
    # is, when disabled, one attribute check + a no-op context manager.
    noop_start = time.perf_counter()
    for _ in range(max(spans_entered, 1)):
        with obs.span("bench.noop"):
            pass
    noop_s = time.perf_counter() - noop_start
    overhead_fraction = noop_s / disabled_s if disabled_s > 0 else 0.0

    emit(
        output_dir,
        "obs_overhead.txt",
        "\n".join(
            [
                "obs overhead on the warm-engine timeline sweep:",
                f"  spans entered per sweep : {spans_entered}",
                f"  sweep, obs disabled     : {disabled_s * 1e3:9.3f} ms",
                f"  sweep, obs enabled      : {enabled_s * 1e3:9.3f} ms",
                f"  est. disabled-path tax  : {overhead_fraction * 100:.3f}%"
                f" ({noop_s * 1e6:.1f} us)",
            ]
        ),
    )
    assert overhead_fraction < MAX_DISABLED_OVERHEAD
    assert enabled_s < disabled_s * MAX_ENABLED_RATIO + 0.05
