"""Warm-engine serving vs a per-request cold engine (the PR 8 bar).

The workload is the loadgen harness's default request mix — rankings,
APA, timelines, search and map, the five served endpoints — replayed
through :meth:`CorridorQueryService.handle_url`.  The warm service
answers every request from the one shared ``CorridorEngine`` behind the
facade; the cold service (``warm=False``) builds a private engine per
request, which is what a naive process-per-query deployment pays.

In-process replay isolates what the shared engine changes — snapshot and
route reuse across requests — from loopback-socket noise, which on this
host dwarfs the fast endpoints.  The HTTP path is still exercised: a
live warm server takes one loadgen run and its qps / tail latencies are
reported alongside (informationally, with only an errors==0 gate).

Pinned: warm and cold services produce byte-identical payloads for every
path in the mix (asserted before any timing), and the warm sweep is at
least ``MIN_SPEEDUP`` faster than the cold sweep.  Results land in
``benchmarks/output/serve.txt`` and the consolidated ``BENCH_PR8.json``
at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.serve import CorridorQueryService, CorridorServer, LoadProfile, run_load
from repro.serve.loadgen import request_sequence
from repro.serve.payloads import render_payload

from conftest import emit

#: Warm serving must beat the per-request cold baseline by this much
#: (the PR's acceptance bar).
MIN_SPEEDUP = 3.0

#: Replays per service; the best (minimum) wall time of each is
#: compared, which is the noise-robust estimator for a fixed workload.
TRIALS = 3

#: The replayed mix: the loadgen harness's default endpoint blend.
PROFILE = LoadProfile(requests=40, clients=4, seed=7)

BENCH_JSON = Path(__file__).parent.parent / "BENCH_PR8.json"


def _sweep(service, urls):
    """Answer the whole mix in-process; every response must be a 200."""
    for url in urls:
        status, _ = service.handle_url(url)
        assert status == 200, url


def _best_of(trials, service, urls):
    best = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        _sweep(service, urls)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_serve_warm_vs_cold(benchmark, scenario, output_dir):
    urls = request_sequence(PROFILE)
    unique = sorted(set(urls))

    warm = CorridorQueryService(scenario=scenario)
    cold = CorridorQueryService(scenario=scenario, warm=False)

    # Equivalence contract FIRST: warm and cold must agree byte for byte
    # on every path in the mix before any speed claim means anything.
    for url in unique:
        warm_status, warm_payload = warm.handle_url(url)
        cold_status, cold_payload = cold.handle_url(url)
        assert warm_status == cold_status == 200
        assert render_payload(warm_payload) == render_payload(cold_payload)

    # The equivalence pass doubles as the warm-up: the shared engine now
    # holds every snapshot the mix touches, which is the steady state a
    # long-lived server runs in.
    warm_s = _best_of(TRIALS, warm, urls)
    cold_s = _best_of(TRIALS, cold, urls)
    speedup = cold_s / warm_s

    # pytest-benchmark pins the steady state of the warm replay.
    benchmark(_sweep, warm, urls)

    # One live-socket loadgen run against the warm engine, for the
    # numbers an operator would actually see (qps, tails).
    with CorridorServer(warm) as server:
        report = run_load(server.url, PROFILE)
    assert report.errors == 0

    record = {
        "bench": "served request mix, shared warm engine vs cold engine per request",
        "requests": PROFILE.requests,
        "unique_paths": len(unique),
        "trials": TRIALS,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 2),
        "http_qps": round(report.qps, 1),
        "http_p50_ms": round(report.p50_ms, 2),
        "http_p99_ms": round(report.p99_ms, 2),
        "http_clients": report.clients,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"served request mix · {PROFILE.requests} requests over "
        f"{len(unique)} paths (seed {PROFILE.seed}) · best of {TRIALS}",
        "",
        f"{'service':22s} {'wall':>10s} {'speedup':>9s}",
        f"{'cold per request':22s} {cold_s * 1e3:8.1f}ms {'1.00x':>9s}",
        f"{'shared warm engine':22s} {warm_s * 1e3:8.1f}ms {speedup:8.2f}x",
        "",
        f"live HTTP loadgen (warm, {report.clients} clients): "
        f"{report.qps:.0f} qps · p50 {report.p50_ms:.1f}ms · "
        f"p99 {report.p99_ms:.1f}ms · {report.errors} errors",
        "",
        "the cold service rebuilds a CorridorEngine per request — every",
        "ranking re-stitches ~60 licensees from scratch; the warm facade",
        "answers from one shared engine under a lock, with identical",
        "payloads (asserted above, diff-gated in scripts/check.sh).",
    ]
    emit(output_dir, "serve.txt", "\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"warm serving only {speedup:.2f}x faster than cold "
        f"({cold_s * 1e3:.1f} ms -> {warm_s * 1e3:.1f} ms)"
    )
