"""Fig 2: active license counts over time for the Fig-1 networks.

Paper shape: NTC ramps to ~160 then winds down to 0 by 2018; NLN reaches
95 by 2016-01-01 and ~150 by 2018; PB has by far the fewest licenses.
"""

from __future__ import annotations

import datetime as dt

from repro.analysis.figures import fig2_active_licenses
from repro.analysis.report import format_table
from repro.viz.figdata import write_series_dat
from repro.viz.paperfigs import fig2_chart

from conftest import emit


def test_bench_fig2(benchmark, scenario, output_dir):
    series = benchmark(fig2_active_licenses, scenario)
    dates = next(iter(series.values())).dates
    rows = [
        (name, *(str(count) for count in counts.counts))
        for name, counts in series.items()
    ]
    emit(
        output_dir,
        "fig2.txt",
        format_table(
            ("Licensee", *(d.isoformat() for d in dates)),
            rows,
            title="Fig 2: active licenses over time",
        ),
    )
    write_series_dat(
        output_dir / "fig2.dat",
        {
            name: [
                (date.year + (date.month - 1) / 12.0, float(count))
                for date, count in counts.as_pairs()
            ]
            for name, counts in series.items()
        },
        header="Fig 2: active license counts",
    )
    fig2_chart(series).render(output_dir / "fig2.svg")

    ntc = dict(series["National Tower Company"].as_pairs())
    nln = dict(series["New Line Networks"].as_pairs())
    pb = dict(series["Pierce Broadband"].as_pairs())
    assert ntc[dt.date(2015, 1, 1)] == 160
    assert ntc[dt.date(2018, 1, 1)] == 0
    assert nln[dt.date(2016, 1, 1)] == 95
    assert nln[dt.date(2018, 1, 1)] == 150
    final = {
        name: counts.counts[-1]
        for name, counts in series.items()
        if name != "National Tower Company"
    }
    assert min(final, key=final.get) == "Pierce Broadband"
