"""Engine cache effectiveness: cold vs warm Fig 1 + Table 1 replay.

The CorridorEngine exists because the corridor's topology changes slowly
while the analyses query it densely: the same (licensee, active-license
set) pair is reconstructed over and over.  This bench quantifies the win
— it replays the Fig 1 timeline and the Table 1 ranking against a fresh
engine (cold: every snapshot is a miss) and then again against the same
engine (warm: every snapshot is a hit), asserts the two passes produce
identical results, and records hit/miss rates and the wall-clock speedup
in ``benchmarks/output/engine.txt``.
"""

from __future__ import annotations

import time

from repro.analysis.report import format_table
from repro.core.engine import CorridorEngine
from repro.core.timeline import yearly_snapshot_dates
from repro.metrics.rankings import rank_connected_networks

from conftest import emit

#: Warm replays must beat the cold pass by at least this factor.
MIN_SPEEDUP = 2.0


def _replay(scenario, engine):
    """One full Fig 1 + Table 1 pass through the engine."""
    dates = yearly_snapshot_dates()
    timelines = {
        name: engine.timeline(name, dates)
        for name in scenario.featured_names
    }
    rankings = rank_connected_networks(
        scenario.database,
        scenario.corridor,
        scenario.snapshot_date,
        engine=engine,
    )
    return timelines, rankings


def test_bench_engine_cold_vs_warm(benchmark, scenario, output_dir):
    fresh = CorridorEngine(scenario.database, scenario.corridor)

    start = time.perf_counter()
    cold_result = _replay(scenario, fresh)
    cold_s = time.perf_counter() - start
    cold_stats = fresh.stats

    start = time.perf_counter()
    warm_result = _replay(scenario, fresh)
    warm_s = time.perf_counter() - start
    warm_stats = fresh.stats

    # pytest-benchmark measures the steady (warm) state.
    benchmark(_replay, scenario, fresh)

    # Cached replays are byte-identical to the cold computation.
    cold_timelines, cold_rankings = cold_result
    warm_timelines, warm_rankings = warm_result
    assert warm_timelines == cold_timelines
    assert [r.as_row() for r in warm_rankings] == [
        r.as_row() for r in cold_rankings
    ]

    # The cold pass reconstructed (intra-pass reuse aside); the warm pass
    # recomputed nothing — miss counters are frozen after it.
    assert cold_stats.snapshot.misses > 0
    assert warm_stats.snapshot.misses == cold_stats.snapshot.misses
    assert warm_stats.route.misses == cold_stats.route.misses
    assert warm_stats.route.hits > cold_stats.route.hits

    speedup = cold_s / warm_s
    assert speedup >= MIN_SPEEDUP, (
        f"warm replay only {speedup:.1f}x faster than cold "
        f"({cold_s * 1e3:.1f} ms -> {warm_s * 1e3:.1f} ms)"
    )

    def rates(stats):
        return (
            f"{stats.snapshot.hit_rate:.1%}",
            f"{stats.route.hit_rate:.1%}",
            f"{stats.geodesic.hit_rate:.1%}",
        )

    rows = [
        ("cold pass (ms)", f"{cold_s * 1e3:.1f}", "", ""),
        ("warm pass (ms)", f"{warm_s * 1e3:.1f}", "", ""),
        ("speedup", f"{speedup:.1f}x", "", ""),
        ("snapshot hits/misses", cold_stats.snapshot.hits,
         warm_stats.snapshot.hits, warm_stats.snapshot.misses),
        ("route hits/misses", cold_stats.route.hits,
         warm_stats.route.hits, warm_stats.route.misses),
        ("geodesic hits/misses", cold_stats.geodesic.hits,
         warm_stats.geodesic.hits, warm_stats.geodesic.misses),
        ("hit rates snap/route/geo (cumulative)", *rates(warm_stats)),
    ]
    emit(
        output_dir,
        "engine.txt",
        format_table(
            ("Measure", "cold", "after warm", "misses"),
            rows,
            title="CorridorEngine: Fig 1 + Table 1 replay, cold vs warm",
        ),
    )
