"""Fig 3: New Line Networks' network map, 2016-01-01 vs 2020-04-01.

Paper shape: the 2020 network has "significantly more towers with
multiple possible physical paths" than the 2016 one, plus disconnected /
detour links.  Output: SVG + GeoJSON renderings per snapshot.
"""

from __future__ import annotations

import datetime as dt

from repro.analysis.figures import fig3_network_maps
from repro.analysis.report import format_table
from repro.viz.svgmap import render_corridor_svg

from conftest import emit


def test_bench_fig3(benchmark, scenario, engine, output_dir):
    artifacts = benchmark(
        fig3_network_maps, scenario, output_dir=output_dir / "fig3"
    )
    rows = [
        (
            artifact.as_of.isoformat(),
            artifact.tower_count,
            artifact.link_count,
            artifact.svg_path.name,
            artifact.geojson_path.name,
        )
        for artifact in artifacts
    ]
    emit(
        output_dir,
        "fig3.txt",
        format_table(
            ("Snapshot", "Towers", "MW links", "SVG", "GeoJSON"),
            rows,
            title="Fig 3: NLN network maps",
        ),
    )
    early, late = artifacts
    assert early.as_of == dt.date(2016, 1, 1)
    assert late.as_of == dt.date(2020, 4, 1)
    # Network augmentation: more towers and redundant links by 2020.
    assert late.tower_count > early.tower_count
    assert late.link_count > early.link_count
    assert late.svg_path.stat().st_size > 0
    assert late.geojson_path.stat().st_size > 0

    # Bonus artefact: every connected network on one map.
    networks = [
        engine.snapshot(name, dt.date(2020, 4, 1))
        for name in scenario.connected_names
    ]
    overview = output_dir / "fig3" / "corridor_overview.svg"
    render_corridor_svg(networks, path=overview)
    assert overview.stat().st_size > 0
