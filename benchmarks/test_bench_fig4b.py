"""Fig 4(b): CDFs of operating frequencies on shortest paths (WH, NLN)
and NLN's alternate paths.

Paper: "WH primarily uses the 6 GHz frequency band, with more than 94% of
the frequencies being under 7 GHz, while NLN primarily uses the 11 GHz
band ... On [NLN's alternate] paths, at least 18% of the frequencies lie
in the 6 GHz frequency band."
"""

from __future__ import annotations

from repro.analysis.figures import fig4b_frequency_cdfs
from repro.analysis.report import format_table
from repro.metrics.frequencies import fraction_below_ghz
from repro.viz.figdata import write_cdf_dat
from repro.viz.paperfigs import fig4b_chart

from conftest import emit


def test_bench_fig4b(benchmark, scenario, output_dir):
    samples = benchmark(fig4b_frequency_cdfs, scenario)
    rows = []
    for name, freqs in samples.items():
        below_7 = fraction_below_ghz(freqs, 7.0)
        rows.append(
            (
                name,
                len(freqs),
                f"{100 * below_7:.1f}%",
                f"{min(freqs):.2f}",
                f"{max(freqs):.2f}",
            )
        )
    emit(
        output_dir,
        "fig4b.txt",
        format_table(
            ("Series", "n freqs", "<7 GHz", "min GHz", "max GHz"),
            rows,
            title="Fig 4b: operating frequencies, CME-NY4",
        ),
    )
    write_cdf_dat(
        output_dir / "fig4b.dat",
        samples,
        header="Fig 4b: CDF of operating frequencies (GHz)",
    )
    fig4b_chart(samples).render(output_dir / "fig4b.svg")

    assert fraction_below_ghz(samples["WH"], 7.0) > 0.94
    assert fraction_below_ghz(samples["NLN"], 7.0) == 0.0
    assert fraction_below_ghz(samples["NLN-alternate"], 7.0) >= 0.18
