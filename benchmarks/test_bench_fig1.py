"""Fig 1: evolution of end-to-end CME–NY4 latency, 2013 → 2020-04-01.

Paper shape: the minimum falls from 4.00 ms (2013) to 3.962 ms (2020);
National Tower Company disappears after 2016; Pierce Broadband appears
only in 2020; NLN is fastest from 2018 onwards.
"""

from __future__ import annotations

from repro.analysis.figures import fig1_latency_evolution
from repro.analysis.report import format_latency_ms, format_table
from repro.viz.figdata import write_series_dat
from repro.viz.paperfigs import fig1_chart

from conftest import emit


def test_bench_fig1(benchmark, scenario, output_dir):
    series = benchmark(fig1_latency_evolution, scenario)
    dates = [point.date for point in next(iter(series.values()))]
    rows = [
        (name, *(format_latency_ms(p.latency_ms, 4) for p in points))
        for name, points in series.items()
    ]
    emit(
        output_dir,
        "fig1.txt",
        format_table(
            ("Licensee", *(d.isoformat() for d in dates)),
            rows,
            title="Fig 1: latency (ms) over time, CME-NY4",
        ),
    )
    write_series_dat(
        output_dir / "fig1.dat",
        {
            name: [
                (p.date.year + (p.date.month - 1) / 12.0, p.latency_ms)
                for p in points
                if p.latency_ms is not None
            ]
            for name, points in series.items()
        },
        header="Fig 1: end-to-end latency (ms), CME-NY4",
    )
    fig1_chart(series).render(output_dir / "fig1.svg")

    by_year = {
        name: {p.date.year: p.latency_ms for p in points}
        for name, points in series.items()
    }
    minima_2013 = min(
        v for v in (y.get(2013) for y in by_year.values()) if v is not None
    )
    minima_2020 = min(
        v for v in (y.get(2020) for y in by_year.values()) if v is not None
    )
    assert abs(minima_2013 - 4.002) < 0.003  # paper: 4.00 ms in 2013
    assert abs(minima_2020 - 3.96171) < 1e-4  # paper: 3.962 ms in 2020
    assert by_year["National Tower Company"][2018] is None
    assert by_year["Pierce Broadband"][2019] is None
    assert by_year["Pierce Broadband"][2020] is not None
