"""Fig 5: satellites versus terrestrial MW networks.

Paper shape: "The overhead of going up and down even a few hundred
kilometres for LEO connectivity will still mean that MW networks provide
lower latency.  However, this may not be the case across the ocean" —
LEO beats fiber over long-enough distances (e.g. Frankfurt–Washington).
"""

from __future__ import annotations

from repro.analysis.figures import fig5_leo_comparison
from repro.analysis.report import format_table
from repro.geodesy import geodesic_distance
from repro.leo.constellation import STARLINK_SHELL, Constellation
from repro.leo.latency import (
    constellation_latency_s,
    fiber_latency_s,
    leo_fiber_crossover_km,
    microwave_latency_s,
    transatlantic_endpoints,
)
from repro.viz.figdata import write_series_dat
from repro.viz.paperfigs import fig5_chart

from conftest import emit


def test_bench_fig5(benchmark, scenario, output_dir):
    points = benchmark(fig5_leo_comparison)
    rows = [
        (
            f"{p.distance_km:.0f}",
            f"{p.microwave_ms:.3f}",
            f"{p.leo_550_ms:.3f}",
            f"{p.leo_300_ms:.3f}",
            f"{p.fiber_ms:.3f}",
            "MW" if p.microwave_beats_leo else "LEO",
        )
        for p in points
        if p.distance_km % 1000 == 0
    ]
    emit(
        output_dir,
        "fig5.txt",
        format_table(
            ("km", "MW ms", "LEO550 ms", "LEO300 ms", "fiber ms", "fastest"),
            rows,
            title="Fig 5: terrestrial MW vs LEO vs fiber (one-way)",
        ),
    )
    write_series_dat(
        output_dir / "fig5.dat",
        {
            "MW": [(p.distance_km, p.microwave_ms) for p in points],
            "LEO-550": [(p.distance_km, p.leo_550_ms) for p in points],
            "LEO-300": [(p.distance_km, p.leo_300_ms) for p in points],
            "fiber": [(p.distance_km, p.fiber_ms) for p in points],
        },
        header="Fig 5: one-way latency (ms) vs ground distance (km)",
    )
    fig5_chart(points).render(output_dir / "fig5.svg")

    # Terrestrial scales: MW wins everywhere in the sweep.
    assert all(p.microwave_ms < p.leo_550_ms for p in points)
    assert all(p.microwave_ms < p.leo_300_ms for p in points)
    # Oceanic scales: LEO beats fiber beyond a sub-1000-km crossover, and
    # a concrete constellation beats fiber on Frankfurt-Washington.
    assert leo_fiber_crossover_km(550_000.0) < 1_000.0
    frankfurt, washington = transatlantic_endpoints()
    distance = geodesic_distance(frankfurt, washington)
    exact = constellation_latency_s(Constellation(STARLINK_SHELL), frankfurt, washington)
    assert exact < fiber_latency_s(distance)
    assert exact > microwave_latency_s(distance)  # MW would win, were it buildable
