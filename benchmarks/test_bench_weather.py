"""§5 extension: weather-dependent effective latency.

The paper argues WH's design (higher APA, shorter links, lower
frequencies) buys reliability: "one network may be able to dominate
another in fair weather ... but a more reliable network may be faster at
other times."  This bench quantifies that: across a seeded ensemble of
storms, NLN wins in fair weather but WH wins (or is the only one
standing) in a measurable fraction of storms.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.metrics.effective_latency import (
    route_availability,
    storm_winner,
    weather_latency_profile,
)
from repro.synth.weather import random_storm, storm_latency_ms

from conftest import emit

N_STORMS = 40


def _storm_outcomes(scenario, engine):
    date = scenario.snapshot_date
    nln = engine.snapshot("New Line Networks", date)
    wh = engine.snapshot("Webline Holdings", date)
    corridor = (
        scenario.corridor.site("CME").point,
        scenario.corridor.site("NY4").point,
    )
    outcomes = []
    for seed in range(N_STORMS):
        storm = random_storm(
            seed, corridor, n_cells=4, peak_mm_h=(60.0, 170.0)
        )
        outcomes.append(
            (
                storm_latency_ms(nln, storm, "CME", "NY4"),
                storm_latency_ms(wh, storm, "CME", "NY4"),
            )
        )
    return outcomes


def test_bench_weather(benchmark, scenario, engine, output_dir):
    outcomes = benchmark(_storm_outcomes, scenario, engine)
    nln_down = sum(1 for nln, _ in outcomes if nln is None)
    wh_down = sum(1 for _, wh in outcomes if wh is None)
    wh_wins = sum(
        1
        for nln, wh in outcomes
        if wh is not None and (nln is None or wh < nln)
    )
    nln_wins = sum(
        1
        for nln, wh in outcomes
        if nln is not None and (wh is None or nln < wh)
    )
    rows = [
        ("storms simulated", N_STORMS),
        ("NLN disconnected", nln_down),
        ("WH disconnected", wh_down),
        ("WH faster (or only one up)", wh_wins),
        ("NLN faster (or only one up)", nln_wins),
    ]
    emit(
        output_dir,
        "weather.txt",
        format_table(("Outcome", "Count"), rows, title="§5 storm ensemble"),
    )

    # Fair weather: NLN is faster (Table 1).  Storms: WH's low-band,
    # high-APA design wins a measurable share, and WH never goes dark.
    assert wh_down == 0
    assert wh_wins >= 1
    assert nln_wins >= 1
    assert nln_down >= wh_down


def test_bench_weather_profiles(benchmark, scenario, engine, output_dir):
    """Effective-latency profiles: the distribution a buyer experiences."""
    date = scenario.snapshot_date
    corridor = (
        scenario.corridor.site("CME").point,
        scenario.corridor.site("NY4").point,
    )
    networks = {
        name: engine.snapshot(name, date)
        for name in ("New Line Networks", "Webline Holdings")
    }

    def profiles():
        return {
            name: weather_latency_profile(
                network, "CME", "NY4", corridor, n_storms=N_STORMS
            )
            for name, network in networks.items()
        }

    result = benchmark(profiles)
    rows = []
    for name, profile in result.items():
        availability = route_availability(networks[name], "CME", "NY4")
        rows.append(
            (
                name,
                f"{profile.fair_weather_ms:.5f}",
                "—" if profile.median_ms is None else f"{profile.median_ms:.5f}",
                "—" if profile.p90_ms is None else f"{profile.p90_ms:.5f}",
                f"{profile.outage_fraction:.0%}",
                f"{100 * availability:.4f}%",
            )
        )
    emit(
        output_dir,
        "weather_profiles.txt",
        format_table(
            ("Network", "fair ms", "storm p50", "storm p90", "outage", "route avail"),
            rows,
            title="Effective latency under weather (storm ensemble + ITU climate)",
        ),
    )
    # The reliability buyer picks WH; NLN's shortest route is climatically
    # less available than WH's.
    assert storm_winner(result) == "Webline Holdings"
    assert route_availability(
        networks["Webline Holdings"], "CME", "NY4"
    ) > route_availability(networks["New Line Networks"], "CME", "NY4")
