"""Benchmark fixtures and output plumbing.

Each benchmark regenerates one paper table/figure, times it with
pytest-benchmark, and writes the regenerated rows/series (with the paper's
published values alongside) to ``benchmarks/output/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.synth.scenario import paper2020_scenario

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def scenario():
    return paper2020_scenario()


@pytest.fixture(scope="session")
def engine(scenario):
    """The scenario's shared CorridorEngine: snapshots survive across
    benchmarks, so later benchmarks measure warm-cache behaviour."""
    return scenario.engine()


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


def emit(output_dir: Path, name: str, text: str) -> None:
    """Write a regenerated artefact and echo it to the terminal."""
    path = output_dir / name
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n=== {name} ===\n{text}")
