"""Benchmark fixtures and output plumbing.

Each benchmark regenerates one paper table/figure, times it with
pytest-benchmark, and writes the regenerated rows/series (with the paper's
published values alongside) to ``benchmarks/output/``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import obs
from repro.synth.scenario import paper2020_scenario

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def scenario():
    return paper2020_scenario()


@pytest.fixture(scope="session")
def engine(scenario):
    """The scenario's shared CorridorEngine: snapshots survive across
    benchmarks, so later benchmarks measure warm-cache behaviour."""
    return scenario.engine()


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


def emit(output_dir: Path, name: str, text: str) -> None:
    """Write a regenerated artefact and echo it to the terminal."""
    path = output_dir / name
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n=== {name} ===\n{text}")


@pytest.fixture
def obs_metrics(request, output_dir):
    """Per-phase metrics captured alongside the benchmark's wall time.

    Everything the benchmark body runs is observed (span histograms,
    cache hit/miss counters); on teardown the registry snapshot lands in
    ``benchmarks/output/<test>.metrics.json`` next to the wall-time
    artefacts, so a perf regression can be attributed to a phase (stitch
    vs fiber vs routing) instead of re-profiled from scratch.  Note the
    numbers aggregate over *every* timed iteration pytest-benchmark runs.
    """
    with obs.capture() as cap:
        yield cap
    name = request.node.name.removeprefix("test_bench_").removeprefix("test_")
    path = output_dir / f"{name}.metrics.json"
    path.write_text(
        json.dumps(cap.registry.snapshot(), indent=2) + "\n",
        encoding="utf-8",
    )
