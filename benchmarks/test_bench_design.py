"""§6 design takeaways as an experiment (cISP-style, DESIGN.md §4).

Sweeps the site-lease budget on the CME–NY4 corridor and designs a
network at each point: latency-optimal trunk (RCSP over a candidate-site
pool) plus greedy 6 GHz bypass augmentation.  Expected shape:

* latency falls towards the c-bound as the budget grows (the race of §1);
* APA and storm survival rise once redundancy budget is available;
* 6 GHz alternates out-survive an 11 GHz-alternate ablation.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.core.corridor import CME, NY4
from repro.design.evaluate import (
    NetworkDesign,
    corridor_endpoints,
    evaluate_design,
    latency_lower_bound_ms,
)
from repro.design.redundancy import augment_with_bypasses
from repro.design.sites import CandidateSite, generate_site_pool
from repro.design.trunk import design_trunk
from repro.geodesy.path import offset_point

from conftest import emit

TRUNK_BUDGETS = (36.0, 40.0, 45.0, 60.0)
BYPASS_BUDGET = 18.0


def _design_sweep():
    pool = generate_site_pool(CME.point, NY4.point, n_sites=400, seed=3)
    west_gw = CandidateSite(
        "gw-west", offset_point(CME.point, NY4.point, 0.0008, 0.0), 3.0, 0.0
    )
    east_gw = CandidateSite(
        "gw-east", offset_point(CME.point, NY4.point, 0.9992, 0.0), 3.0, 0.0
    )
    west, east = corridor_endpoints(CME.point, NY4.point)
    reports = {}
    for budget in TRUNK_BUDGETS:
        trunk = design_trunk(pool, west_gw, east_gw, budget=budget)
        bypasses = tuple(augment_with_bypasses(trunk, pool, budget=BYPASS_BUDGET))
        design = NetworkDesign(trunk=trunk, bypasses=bypasses, west=west, east=east)
        reports[budget] = evaluate_design(design, n_storms=15)
        if budget == TRUNK_BUDGETS[-1]:
            high_band = tuple(
                augment_with_bypasses(trunk, pool, budget=BYPASS_BUDGET, band_ghz=11.0)
            )
            reports["11GHz-alternates"] = evaluate_design(
                NetworkDesign(trunk=trunk, bypasses=high_band, west=west, east=east),
                n_storms=15,
            )
            reports["no-bypasses"] = evaluate_design(
                NetworkDesign(trunk=trunk, bypasses=(), west=west, east=east),
                n_storms=15,
            )
    return reports


def test_bench_design(benchmark, output_dir):
    reports = benchmark(_design_sweep)
    bound = latency_lower_bound_ms(CME.point, NY4.point)
    rows = [
        (
            str(key),
            f"{report.latency_ms:.5f}",
            f"{report.latency_ms - bound:+.5f}",
            f"{report.apa:.0%}",
            f"{report.storm_survival:.0%}",
            report.tower_count,
            f"{report.total_cost:.1f}",
        )
        for key, report in reports.items()
    ]
    emit(
        output_dir,
        "design.txt",
        format_table(
            ("Design", "ms", "vs c-bound", "APA", "storm up", "towers", "cost"),
            rows,
            title=f"§6 design sweep (c-bound {bound:.5f} ms)",
        ),
    )

    # Latency improves monotonically with trunk budget.
    latencies = [reports[budget].latency_ms for budget in TRUNK_BUDGETS]
    assert all(a > b for a, b in zip(latencies, latencies[1:]))
    # The richest design is competitive with the real race leaders.
    assert reports[60.0].latency_ms < 3.975
    # Redundancy: bypassed designs dominate the bare trunk on APA and
    # storm survival; 6 GHz alternates survive at least as well as 11 GHz.
    assert reports["no-bypasses"].apa == 0.0
    assert reports[60.0].apa >= 0.8
    assert reports[60.0].storm_survival >= reports["no-bypasses"].storm_survival
    assert (
        reports[60.0].storm_survival
        >= reports["11GHz-alternates"].storm_survival
    )
